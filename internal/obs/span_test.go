package obs

import (
	"strings"
	"testing"

	"contention/internal/des"
	"contention/internal/trace"
)

func TestTracerVirtualTime(t *testing.T) {
	withTelemetry(t)
	k := des.New()
	tr := NewTracer(k.Now, 0)
	k.At(1, func() {
		sp := tr.Start("host", "compute")
		k.At(3.5, func() { sp.End() })
	})
	k.At(2, func() { tr.Start("link", "burst").End() })
	k.Run()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0] != (SpanRecord{Actor: "host", Name: "compute", Start: 1, End: 3.5}) {
		t.Fatalf("virtual span = %+v", spans[0])
	}
	if spans[1].Start != 2 || spans[1].Duration() != 0 {
		t.Fatalf("instant span = %+v", spans[1])
	}
}

func TestTracerWallClockMonotone(t *testing.T) {
	withTelemetry(t)
	tr := NewTracer(nil, 0) // nil clock selects wall clock
	sp := tr.Start("a", "x")
	if d := sp.End(); d < 0 {
		t.Fatalf("negative wall duration %v", d)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].End < spans[0].Start {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTracerDisabledAndNilAreFree(t *testing.T) {
	SetEnabled(false)
	tr := NewTracer(WallClock(), 4)
	if sp := tr.Start("a", "x"); sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	var nilTracer *Tracer
	if sp := nilTracer.Start("a", "x"); sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	if nilTracer.Spans() != nil || nilTracer.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
	nilTracer.Reset() // must not panic
}

func TestTracerBounded(t *testing.T) {
	withTelemetry(t)
	clock := 0.0
	tr := NewTracer(func() float64 { clock++; return clock }, 2)
	for i := 0; i < 5; i++ {
		tr.Start("a", "x").End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTracerSortsDeterministically(t *testing.T) {
	withTelemetry(t)
	now := 0.0
	tr := NewTracer(func() float64 { return now }, 0)
	// Same start time, distinct actors/names, finished out of order.
	b := tr.Start("b", "second")
	a := tr.Start("a", "first")
	b.End()
	a.End()
	spans := tr.Spans()
	if spans[0].Actor != "a" || spans[1].Actor != "b" {
		t.Fatalf("tie-break order wrong: %+v", spans)
	}
}

// TestExportRendersWithTraceTimeline is the interop contract: spans
// exported into the existing trace package must render as an actor
// timeline, whether their clock was virtual or wall.
func TestExportRendersWithTraceTimeline(t *testing.T) {
	withTelemetry(t)
	k := des.New()
	tr := NewTracer(k.Now, 0)
	k.At(0, func() {
		sp := tr.Start("sun", "serial")
		k.At(1, func() {
			sp.End()
			sp2 := tr.Start("cm2", "execute")
			k.At(2, func() { sp2.End() })
		})
	})
	k.Run()

	var log trace.Trace
	tr.Export(&log, "idle")
	if log.Len() != 4 {
		t.Fatalf("exported %d events, want 4", log.Len())
	}
	if got := log.StateAt("sun", 0.5); got != "serial" {
		t.Fatalf("sun @0.5 = %q", got)
	}
	if got := log.StateAt("sun", 1.5); got != "idle" {
		t.Fatalf("sun @1.5 = %q", got)
	}
	if got := log.StateAt("cm2", 1.5); got != "execute" {
		t.Fatalf("cm2 @1.5 = %q", got)
	}
	out := log.Timeline(1, []string{"sun", "cm2"})
	if !strings.Contains(out, "serial") || !strings.Contains(out, "execute") {
		t.Fatalf("timeline missing states:\n%s", out)
	}
}

func TestStartSpanUsesDefaultTracer(t *testing.T) {
	withTelemetry(t)
	DefaultTracer().Reset()
	t.Cleanup(DefaultTracer().Reset)
	sp := StartSpan("driver", "figure5")
	if sp == nil {
		t.Fatal("StartSpan returned nil while enabled")
	}
	sp.End()
	spans := DefaultTracer().Spans()
	if len(spans) != 1 || spans[0].Name != "figure5" {
		t.Fatalf("default tracer spans = %+v", spans)
	}
}
