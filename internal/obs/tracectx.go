package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// TraceContext is the compact cross-process trace state one request
// carries: which trace it belongs to, which span is its direct parent,
// and whether the head of the trace decided to sample it. It crosses
// process boundaries in the X-Contention-Trace HTTP header (see
// internal/serve.TraceHeader) and in the flag-gated trace block of the
// binary wire format; within a process it threads through Tracer.StartCtx
// so every hop's spans share one trace id and parent/child links.
//
// Sampling is head-based: the first process to see a request (loadgen,
// contentionlb, or a bare replica) consults its Sampler once, and every
// hop downstream honors that decision — a sampled request produces a
// full span tree on every process it touches, an unsampled one costs
// nothing anywhere.
type TraceContext struct {
	// TraceID identifies the whole request tree; 0 means "no trace".
	TraceID uint64
	// SpanID is the caller's span — the parent of any span the receiver
	// opens for this request. 0 at the head of a trace.
	SpanID uint64
	// Sampled carries the head's sampling decision.
	Sampled bool
}

// Valid reports whether tc names a trace at all.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// String renders the wire form: 16 hex trace id, 16 hex span id, 2 hex
// flags (bit0 = sampled), dash-separated — 36 bytes, fixed width.
func (tc TraceContext) String() string {
	flags := 0
	if tc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("%016x-%016x-%02x", tc.TraceID, tc.SpanID, flags)
}

// ParseTraceContext parses the wire form. Anything malformed returns
// (zero, false) — a garbled header must never fail a request, only lose
// its trace. The parse is allocation-free.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != 36 || s[16] != '-' || s[33] != '-' {
		return TraceContext{}, false
	}
	tr, ok := parseHex64(s[:16])
	if !ok {
		return TraceContext{}, false
	}
	sp, ok := parseHex64(s[17:33])
	if !ok {
		return TraceContext{}, false
	}
	fl, ok := parseHex64(s[34:36])
	if !ok || fl > 0xff {
		return TraceContext{}, false
	}
	if tr == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tr, SpanID: sp, Sampled: fl&1 != 0}, true
}

// parseHex64 parses a fixed-width lowercase/uppercase hex field without
// allocating (strconv.ParseUint would, via the error path shape).
func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// idBase seeds this process's id sequence from crypto/rand so two
// processes started in the same nanosecond still mint disjoint ids;
// idCounter makes ids unique within the process.
var (
	idBase    uint64
	idCounter atomic.Uint64
)

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idBase = binary.LittleEndian.Uint64(b[:])
	} else {
		idBase = 0x9e3779b97f4a7c15 // fixed fallback; counter still disambiguates in-process
	}
}

// NewID mints a non-zero 64-bit id for traces and spans: the process
// seed plus a counter, finalized through fmix64 so consecutive ids are
// well spread.
func NewID() uint64 {
	id := fmix64(idBase + idCounter.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// fmix64 is the MurmurHash3 finalizer (same avalanche the ring uses).
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRootContext starts a fresh trace with the given sampling verdict.
func NewRootContext(sampled bool) TraceContext {
	return TraceContext{TraceID: NewID(), Sampled: sampled}
}

// Sampler is the head-sampling knob: deterministic 1-in-N counting
// (request k is sampled when k ≡ 1 mod N), so a test driving exactly N
// requests knows exactly which one produced a span tree. A nil *Sampler
// never samples; Sample is allocation-free either way.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler selecting 1 in every requests; every <= 0
// returns nil (never sample), every == 1 samples everything.
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this request should start a sampled trace.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 1%s.every
}
