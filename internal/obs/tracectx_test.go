package obs

import "testing"

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: 1, SpanID: 0, Sampled: false},
		{TraceID: 1, SpanID: 0, Sampled: true},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Sampled: true},
		{TraceID: ^uint64(0), SpanID: ^uint64(0), Sampled: false},
	}
	for _, tc := range cases {
		s := tc.String()
		if len(s) != 36 {
			t.Fatalf("String(%+v) = %q, want 36 bytes", tc, s)
		}
		got, ok := ParseTraceContext(s)
		if !ok || got != tc {
			t.Fatalf("round trip %+v -> %q -> %+v ok=%v", tc, s, got, ok)
		}
	}
}

func TestTraceContextParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"0000000000000001",                      // too short
		"0000000000000001-0000000000000002-01x", // too long
		"0000000000000001_0000000000000002-01",  // wrong separator
		"000000000000000g-0000000000000002-01",  // non-hex trace
		"0000000000000001-000000000000000z-01",  // non-hex span
		"0000000000000001-0000000000000002-0g",  // non-hex flags
		"0000000000000000-0000000000000002-01",  // zero trace id
	}
	for _, s := range bad {
		if got, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) = %+v, want reject", s, got)
		}
	}
	// Uppercase hex is accepted (case-insensitive parse).
	if got, ok := ParseTraceContext("00000000DEADBEEF-0000000000000002-01"); !ok || got.TraceID != 0xdeadbeef || !got.Sampled {
		t.Fatalf("uppercase parse = %+v ok=%v", got, ok)
	}
}

// TestTraceContextParseAllocationFree pins the header-parse fast path:
// every request through serve and cluster parses the incoming trace
// header, so the parse must not allocate even for valid contexts.
func TestTraceContextParseAllocationFree(t *testing.T) {
	wire := TraceContext{TraceID: 42, SpanID: 7, Sampled: true}.String()
	if allocs := testing.AllocsPerRun(200, func() {
		if _, ok := ParseTraceContext(wire); !ok {
			t.Fatal("parse failed")
		}
	}); allocs != 0 {
		t.Fatalf("ParseTraceContext allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSamplerDeterministic pins the 1-in-N counting rule: the first
// request of every N is sampled, so a differential test driving exactly
// N requests knows which one carries a span tree.
func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(4)
	want := []bool{true, false, false, false, true, false, false, false}
	for i, w := range want {
		if got := s.Sample(); got != w {
			t.Fatalf("request %d: sampled=%v, want %v", i+1, got, w)
		}
	}
	if NewSampler(0) != nil || NewSampler(-3) != nil {
		t.Fatal("non-positive rate must return the never-sampling nil sampler")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler sampled")
	}
	one := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !one.Sample() {
			t.Fatalf("NewSampler(1) skipped request %d", i+1)
		}
	}
}

func TestSamplerAllocationFree(t *testing.T) {
	s := NewSampler(10)
	var nilS *Sampler
	if allocs := testing.AllocsPerRun(200, func() {
		s.Sample()
		nilS.Sample()
	}); allocs != 0 {
		t.Fatalf("Sample allocates %.1f objects/op, want 0", allocs)
	}
}

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID minted zero")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %016x", id)
		}
		seen[id] = true
	}
	root := NewRootContext(true)
	if !root.Valid() || !root.Sampled || root.SpanID != 0 {
		t.Fatalf("NewRootContext = %+v", root)
	}
}
