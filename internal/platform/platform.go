// Package platform assembles the substrate packages (cpu, link, simd,
// mesh) into the two coupled heterogeneous systems the paper studies:
// the tightly coupled Sun/CM2 and the independent Sun/Paragon pair on a
// private Ethernet. Default parameters are synthetic but era-plausible;
// the contention model never sees them directly — it is calibrated
// against the running platform exactly as the paper calibrates against
// real hardware (see package calibrate), so the experiments test the
// model, not the constants.
package platform

import (
	"fmt"

	"contention/internal/cpu"
	"contention/internal/des"
	"contention/internal/disk"
	"contention/internal/link"
	"contention/internal/mesh"
	"contention/internal/simd"
)

// CM2Params configures a SunCM2 platform.
type CM2Params struct {
	// HostSpeed is the Sun CPU speed in work units per second. Work
	// units are defined as seconds of dedicated Sun CPU, so 1.0 is the
	// natural value.
	HostSpeed float64
	// XferStartup is the CPU work per transferred array (message):
	// the ground truth behind the model's α_sun.
	XferStartup float64
	// XferPerWord is the CPU work per transferred word: ground truth
	// behind 1/β_sun. CM2 transfers are element-by-element operations
	// driven entirely by the Sun CPU.
	XferPerWord float64
	// FIFODepth is the instruction pipeline depth between the Sun and
	// the CM2 sequencer.
	FIFODepth int
}

// DefaultCM2Params returns era-plausible parameters: ≈2 ms per-array
// startup and ≈250k words/s effective transfer rate.
func DefaultCM2Params() CM2Params {
	return CM2Params{
		HostSpeed:   1.0,
		XferStartup: 2e-3,
		XferPerWord: 4e-6,
		FIFODepth:   8,
	}
}

func (p CM2Params) validate() error {
	if p.HostSpeed <= 0 {
		return fmt.Errorf("platform: host speed %v must be positive", p.HostSpeed)
	}
	if p.XferStartup < 0 || p.XferPerWord < 0 {
		return fmt.Errorf("platform: negative transfer parameters %v/%v", p.XferStartup, p.XferPerWord)
	}
	if p.FIFODepth < 1 {
		return fmt.Errorf("platform: FIFO depth %d must be ≥ 1", p.FIFODepth)
	}
	return nil
}

// SunCM2 is the tightly coupled host/SIMD platform.
type SunCM2 struct {
	K       *des.Kernel
	Host    *cpu.Host
	Backend *simd.Backend
	Params  CM2Params
}

// NewSunCM2 builds a Sun/CM2 platform on the kernel.
func NewSunCM2(k *des.Kernel, params CM2Params) (*SunCM2, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &SunCM2{
		K:       k,
		Host:    cpu.NewHost(k, "sun", params.HostSpeed),
		Backend: simd.NewBackend(k, "cm2"),
		Params:  params,
	}, nil
}

// MustNewSunCM2 is NewSunCM2 with panic-on-error, for fixtures.
func MustNewSunCM2(k *des.Kernel, params CM2Params) *SunCM2 {
	s, err := NewSunCM2(k, params)
	if err != nil {
		panic(err)
	}
	return s
}

// Transfer moves one array of the given size between the Sun and the
// CM2 (either direction — the cost is symmetric CPU work), blocking p.
// Element-by-element copying is pure Sun CPU work, so contention on the
// Sun slows it by exactly the fair-share factor.
func (s *SunCM2) Transfer(p *des.Proc, words int) {
	if words < 0 {
		panic(fmt.Sprintf("platform: negative transfer size %d", words))
	}
	work := s.Params.XferStartup + s.Params.XferPerWord*float64(words)
	s.Host.Compute(p, work)
}

// TransferMessages moves n equal-sized arrays.
func (s *SunCM2) TransferMessages(p *des.Proc, n, words int) {
	for i := 0; i < n; i++ {
		s.Transfer(p, words)
	}
}

// SpawnCPUHogs starts n CPU-bound contender processes on the Sun that
// compute forever (until the simulation horizon).
func (s *SunCM2) SpawnCPUHogs(n int) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("hog%d", i)
		s.K.Spawn(name, func(p *des.Proc) {
			s.Host.Compute(p, 1e18)
		})
	}
}

// HopMode selects the Sun/Paragon communication path.
type HopMode int

const (
	// OneHop is direct TCP from the Sun to a Paragon compute node.
	OneHop HopMode = iota
	// TwoHops routes through the Paragon service node, which bridges
	// TCP to the NX fabric.
	TwoHops
)

// String implements fmt.Stringer.
func (m HopMode) String() string {
	switch m {
	case OneHop:
		return "1-HOP"
	case TwoHops:
		return "2-HOPS"
	default:
		return fmt.Sprintf("HopMode(%d)", int(m))
	}
}

// ParagonParams configures a SunParagon platform.
type ParagonParams struct {
	HostSpeed float64
	Link      link.Config
	// Conversion work on the Sun per message/word, each direction.
	SendStartup, SendPerWord float64
	RecvStartup, RecvPerWord float64
	Mesh                     mesh.Config
	Mode                     HopMode
	// Disk is the front-end's local disk (Host is filled in at
	// construction; used by I/O-bound contenders).
	Disk disk.Config
}

// DefaultParagonParams returns era-plausible parameters: a 10 Mbit/s
// private Ethernet (≈312k words/s) with a 1024-word MTU — the origin of
// the paper's 1024-word piecewise threshold — and XDR-style conversion
// costs on the Sun.
func DefaultParagonParams(mode HopMode) ParagonParams {
	return ParagonParams{
		HostSpeed: 1.0,
		Link: link.Config{
			Name:      "ether",
			MTU:       1024,
			PerPacket: 8e-4,
			Bandwidth: 312500,
		},
		// Conversion (XDR) cost grows per word faster than the startup,
		// so a contender's CPU share rises with its message size and
		// saturates near 1000 words — the j-dependence behind the
		// paper's delay^{i,j} tables. Per-word conversion on a Sun 4/60
		// is comparable to the 10 Mbit/s wire itself.
		SendStartup: 2e-4,
		SendPerWord: 3.2e-6,
		RecvStartup: 3e-4,
		RecvPerWord: 3.4e-6,
		Mesh: mesh.Config{
			Name:      "paragon",
			Nodes:     64,
			NodeSpeed: 8.0, // per node, relative to the Sun
			NXAlpha:   6e-5,
			NXBeta:    2.2e7,
		},
		Mode: mode,
		Disk: disk.Config{
			Name:     "sd0",
			Seek:     0.012,
			Rate:     1e6,
			CPUPerOp: 1e-4,
		},
	}
}

func (p ParagonParams) validate() error {
	if p.HostSpeed <= 0 {
		return fmt.Errorf("platform: host speed %v must be positive", p.HostSpeed)
	}
	if p.SendStartup < 0 || p.SendPerWord < 0 || p.RecvStartup < 0 || p.RecvPerWord < 0 {
		return fmt.Errorf("platform: negative conversion parameters")
	}
	if p.Mode != OneHop && p.Mode != TwoHops {
		return fmt.Errorf("platform: unknown hop mode %d", int(p.Mode))
	}
	return nil
}

// SunParagon is the independent host/MPP platform.
type SunParagon struct {
	K          *des.Kernel
	Host       *cpu.Host
	Link       *link.Link
	SunEnd     *link.Endpoint
	ParagonEnd *link.Endpoint
	MPP        *mesh.Machine
	Disk       *disk.Disk
	Params     ParagonParams
}

// NewSunParagon builds a Sun/Paragon platform on the kernel.
func NewSunParagon(k *des.Kernel, params ParagonParams) (*SunParagon, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	host := cpu.NewHost(k, "sun", params.HostSpeed)
	mpp, err := mesh.New(k, params.Mesh)
	if err != nil {
		return nil, err
	}
	sunCfg := link.EndpointConfig{
		Name:        "sun",
		Host:        host,
		SendStartup: params.SendStartup,
		SendPerWord: params.SendPerWord,
		RecvStartup: params.RecvStartup,
		RecvPerWord: params.RecvPerWord,
	}
	parCfg := link.EndpointConfig{Name: "paragon"}
	if params.Mode == TwoHops {
		// Inbound: service node forwards across the NX fabric.
		parCfg.Forward = func(words int, deliver func()) {
			mpp.NXHopAsync(words, deliver)
		}
		// Outbound: compute node hops to the service node first.
		parCfg.PreSend = func(p *des.Proc, words int) {
			mpp.NXSend(p, words)
		}
	}
	l, sunEnd, parEnd, err := link.New(k, params.Link, sunCfg, parCfg)
	if err != nil {
		return nil, err
	}
	diskCfg := params.Disk
	diskCfg.Host = host
	d, err := disk.New(k, diskCfg)
	if err != nil {
		return nil, err
	}
	return &SunParagon{
		K:          k,
		Host:       host,
		Link:       l,
		SunEnd:     sunEnd,
		ParagonEnd: parEnd,
		MPP:        mpp,
		Disk:       d,
		Params:     params,
	}, nil
}

// MustNewSunParagon is NewSunParagon with panic-on-error.
func MustNewSunParagon(k *des.Kernel, params ParagonParams) *SunParagon {
	s, err := NewSunParagon(k, params)
	if err != nil {
		panic(err)
	}
	return s
}

// SendToParagon transfers one message from the Sun to the Paragon on
// the given application port, blocking p through conversion and wire.
func (s *SunParagon) SendToParagon(p *des.Proc, port string, words int) {
	s.SunEnd.Send(p, port, port, words, nil)
}

// SendToSun transfers one message from the Paragon to the Sun.
func (s *SunParagon) SendToSun(p *des.Proc, port string, words int) {
	s.ParagonEnd.Send(p, port, port, words, nil)
}

// RecvOnParagon blocks p until a message for port arrives at the Paragon.
func (s *SunParagon) RecvOnParagon(p *des.Proc, port string) link.Message {
	return s.ParagonEnd.Recv(p, port)
}

// RecvOnSun blocks p until a message for port arrives at the Sun.
func (s *SunParagon) RecvOnSun(p *des.Proc, port string) link.Message {
	return s.SunEnd.Recv(p, port)
}

// SpawnCPUHogs starts n CPU-bound contender processes on the Sun.
func (s *SunParagon) SpawnCPUHogs(n int) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("hog%d", i)
		s.K.Spawn(name, func(p *des.Proc) {
			s.Host.Compute(p, 1e18)
		})
	}
}

// NewSunMultiParagon generalizes the platform to n back-end machines:
// n private links and MPPs attached to ONE shared front-end CPU and
// disk ("generalization of these results to more than two machines is
// straightforward" — §1). Each returned leg is a full SunParagon view
// sharing the host, so the existing workload generators and benchmarks
// run unchanged per leg.
func NewSunMultiParagon(k *des.Kernel, params ParagonParams, n int) ([]*SunParagon, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: leg count %d must be ≥ 1", n)
	}
	if err := params.validate(); err != nil {
		return nil, err
	}
	host := cpu.NewHost(k, "sun", params.HostSpeed)
	diskCfg := params.Disk
	diskCfg.Host = host
	d, err := disk.New(k, diskCfg)
	if err != nil {
		return nil, err
	}
	legs := make([]*SunParagon, 0, n)
	for i := 0; i < n; i++ {
		legParams := params
		legParams.Link.Name = fmt.Sprintf("%s%d", params.Link.Name, i)
		legParams.Mesh.Name = fmt.Sprintf("%s%d", params.Mesh.Name, i)
		mpp, err := mesh.New(k, legParams.Mesh)
		if err != nil {
			return nil, err
		}
		sunCfg := link.EndpointConfig{
			Name:        fmt.Sprintf("sun/%d", i),
			Host:        host,
			SendStartup: params.SendStartup,
			SendPerWord: params.SendPerWord,
			RecvStartup: params.RecvStartup,
			RecvPerWord: params.RecvPerWord,
		}
		parCfg := link.EndpointConfig{Name: fmt.Sprintf("paragon/%d", i)}
		if params.Mode == TwoHops {
			m := mpp
			parCfg.Forward = func(words int, deliver func()) { m.NXHopAsync(words, deliver) }
			parCfg.PreSend = func(p *des.Proc, words int) { m.NXSend(p, words) }
		}
		l, sunEnd, parEnd, err := link.New(k, legParams.Link, sunCfg, parCfg)
		if err != nil {
			return nil, err
		}
		legs = append(legs, &SunParagon{
			K:          k,
			Host:       host,
			Link:       l,
			SunEnd:     sunEnd,
			ParagonEnd: parEnd,
			MPP:        mpp,
			Disk:       d,
			Params:     legParams,
		})
	}
	return legs, nil
}
