package platform

import (
	"math"
	"testing"

	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCM2TransferDedicatedCost(t *testing.T) {
	k := des.New()
	s := MustNewSunCM2(k, DefaultCM2Params())
	var done float64
	k.Spawn("app", func(p *des.Proc) {
		s.Transfer(p, 1000)
		done = p.Now()
	})
	k.Run()
	want := s.Params.XferStartup + s.Params.XferPerWord*1000
	if !approx(done, want, 1e-9) {
		t.Fatalf("transfer took %v, want %v", done, want)
	}
}

func TestCM2TransferSlowsByPPlusOne(t *testing.T) {
	for _, hogs := range []int{0, 1, 3} {
		k := des.New()
		s := MustNewSunCM2(k, DefaultCM2Params())
		var done float64
		k.Spawn("app", func(p *des.Proc) {
			s.TransferMessages(p, 10, 500)
			done = p.Now()
		})
		s.SpawnCPUHogs(hogs)
		k.RunUntil(1e6)
		dedicated := 10 * (s.Params.XferStartup + s.Params.XferPerWord*500)
		want := dedicated * float64(hogs+1)
		if !approx(done, want, 1e-6) {
			t.Fatalf("hogs=%d: transfer took %v, want %v", hogs, done, want)
		}
	}
}

func TestCM2ParamValidation(t *testing.T) {
	k := des.New()
	bad := []CM2Params{
		{HostSpeed: 0, FIFODepth: 1},
		{HostSpeed: 1, XferStartup: -1, FIFODepth: 1},
		{HostSpeed: 1, FIFODepth: 0},
	}
	for i, params := range bad {
		if _, err := NewSunCM2(k, params); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestParagonDedicatedSendCost(t *testing.T) {
	k := des.New()
	s := MustNewSunParagon(k, DefaultParagonParams(OneHop))
	var done float64
	k.Spawn("recv", func(p *des.Proc) { s.RecvOnParagon(p, "app") })
	k.Spawn("app", func(p *des.Proc) {
		s.SendToParagon(p, "app", 200)
		done = p.Now()
	})
	k.Run()
	conv := s.Params.SendStartup + s.Params.SendPerWord*200
	wire := s.Link.WireTime(200)
	if !approx(done, conv+wire, 1e-9) {
		t.Fatalf("send took %v, want %v", done, conv+wire)
	}
}

func TestParagonTwoHopsAddsNXDelay(t *testing.T) {
	k1 := des.New()
	one := MustNewSunParagon(k1, DefaultParagonParams(OneHop))
	var arr1 float64
	k1.Spawn("r", func(p *des.Proc) { arr1 = one.RecvOnParagon(p, "app").Arrived })
	k1.Spawn("s", func(p *des.Proc) { one.SendToParagon(p, "app", 500) })
	k1.Run()

	k2 := des.New()
	two := MustNewSunParagon(k2, DefaultParagonParams(TwoHops))
	var arr2 float64
	k2.Spawn("r", func(p *des.Proc) { arr2 = two.RecvOnParagon(p, "app").Arrived })
	k2.Spawn("s", func(p *des.Proc) { two.SendToParagon(p, "app", 500) })
	k2.Run()

	nx := two.MPP.NXTime(500)
	if !approx(arr2, arr1+nx, 1e-9) {
		t.Fatalf("2-HOPS arrival %v, want 1-HOP %v + NX %v", arr2, arr1, nx)
	}
}

func TestParagonTwoHopsOutboundPreSend(t *testing.T) {
	k := des.New()
	s := MustNewSunParagon(k, DefaultParagonParams(TwoHops))
	var done float64
	k.Spawn("r", func(p *des.Proc) { s.RecvOnSun(p, "app") })
	k.Spawn("s", func(p *des.Proc) {
		s.SendToSun(p, "app", 500)
		done = p.Now()
	})
	k.Run()
	nx := s.MPP.NXTime(500)
	wire := s.Link.WireTime(500)
	if done < nx+wire-1e-9 {
		t.Fatalf("paragon→sun send took %v, want ≥ %v (NX hop + wire)", done, nx+wire)
	}
}

func TestParagonCPUContentionSlowsSends(t *testing.T) {
	// CPU-bound hogs on the Sun slow the conversion stage, so sends take
	// measurably longer than dedicated but less than conversion×(p+1)+wire
	// upper bounds. Check the direction and rough magnitude.
	run := func(hogs int) float64 {
		k := des.New()
		s := MustNewSunParagon(k, DefaultParagonParams(OneHop))
		var done float64
		k.Spawn("r", func(p *des.Proc) {
			for i := 0; i < 50; i++ {
				s.RecvOnParagon(p, "app")
			}
		})
		k.Spawn("s", func(p *des.Proc) {
			for i := 0; i < 50; i++ {
				s.SendToParagon(p, "app", 200)
			}
			done = p.Now()
		})
		s.SpawnCPUHogs(hogs)
		k.RunUntil(1e6)
		return done
	}
	dedicated := run(0)
	contended := run(3)
	if contended <= dedicated*1.2 {
		t.Fatalf("3 hogs: %v vs dedicated %v — CPU contention should slow sends", contended, dedicated)
	}
	params := DefaultParagonParams(OneHop)
	conv := params.SendStartup + params.SendPerWord*200
	wire := params.Link.PerPacket + 200/params.Link.Bandwidth
	upper := 50 * (conv*4 + wire + 1e-3)
	if contended > upper {
		t.Fatalf("contended time %v exceeds upper bound %v", contended, upper)
	}
}

func TestParagonLinkSharingBetweenApps(t *testing.T) {
	// Two applications sending concurrently share the wire: total time
	// for both ≥ serialized wire occupancy.
	k := des.New()
	s := MustNewSunParagon(k, DefaultParagonParams(OneHop))
	var done1, done2 float64
	k.Spawn("r1", func(p *des.Proc) {
		for i := 0; i < 20; i++ {
			s.RecvOnParagon(p, "a1")
		}
	})
	k.Spawn("r2", func(p *des.Proc) {
		for i := 0; i < 20; i++ {
			s.RecvOnParagon(p, "a2")
		}
	})
	k.Spawn("s1", func(p *des.Proc) {
		for i := 0; i < 20; i++ {
			s.SendToParagon(p, "a1", 1000)
		}
		done1 = p.Now()
	})
	k.Spawn("s2", func(p *des.Proc) {
		for i := 0; i < 20; i++ {
			s.SendToParagon(p, "a2", 1000)
		}
		done2 = p.Now()
	})
	k.Run()
	wire := s.Link.WireTime(1000)
	minSerialized := 40 * wire
	last := math.Max(done1, done2)
	if last < minSerialized-1e-9 {
		t.Fatalf("both finished at %v, impossible given 40 wire occupancies of %v", last, wire)
	}
}

func TestParagonParamValidation(t *testing.T) {
	k := des.New()
	p := DefaultParagonParams(OneHop)
	p.HostSpeed = 0
	if _, err := NewSunParagon(k, p); err == nil {
		t.Error("zero host speed accepted")
	}
	p = DefaultParagonParams(OneHop)
	p.SendPerWord = -1
	if _, err := NewSunParagon(k, p); err == nil {
		t.Error("negative conversion accepted")
	}
	p = DefaultParagonParams(OneHop)
	p.Mode = HopMode(9)
	if _, err := NewSunParagon(k, p); err == nil {
		t.Error("unknown mode accepted")
	}
	p = DefaultParagonParams(OneHop)
	p.Mesh.Nodes = 0
	if _, err := NewSunParagon(k, p); err == nil {
		t.Error("bad mesh config accepted")
	}
	p = DefaultParagonParams(OneHop)
	p.Link.MTU = 0
	if _, err := NewSunParagon(k, p); err == nil {
		t.Error("bad link config accepted")
	}
}

func TestHopModeString(t *testing.T) {
	if OneHop.String() != "1-HOP" || TwoHops.String() != "2-HOPS" {
		t.Fatalf("strings %q/%q", OneHop.String(), TwoHops.String())
	}
	if HopMode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestSunMultiParagonSharesHostAndDisk(t *testing.T) {
	k := des.New()
	legs, err := NewSunMultiParagon(k, DefaultParagonParams(OneHop), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) != 3 {
		t.Fatalf("got %d legs, want 3", len(legs))
	}
	for i := 1; i < 3; i++ {
		if legs[i].Host != legs[0].Host {
			t.Fatal("legs do not share the host")
		}
		if legs[i].Disk != legs[0].Disk {
			t.Fatal("legs do not share the disk")
		}
		if legs[i].Link == legs[0].Link {
			t.Fatal("legs share a link")
		}
		if legs[i].MPP == legs[0].MPP {
			t.Fatal("legs share an MPP")
		}
	}
}

func TestSunMultiParagonWiresAreIndependent(t *testing.T) {
	// Probe: the latency of a single message while a streamer saturates
	// either the SAME leg's wire or the OTHER leg's wire. The same-leg
	// probe must queue behind the streamer; the cross-leg probe only
	// shares the CPU conversion stage.
	run := func(sameLeg bool) float64 {
		k := des.New()
		legs, err := NewSunMultiParagon(k, DefaultParagonParams(OneHop), 2)
		if err != nil {
			t.Fatal(err)
		}
		streamLeg := legs[1]
		if sameLeg {
			streamLeg = legs[0]
		}
		k.Spawn("streamer", func(p *des.Proc) {
			for {
				streamLeg.SendToParagon(p, "stream", 4000)
			}
		})
		total := 0.0
		const probes = 40
		k.Spawn("probe", func(p *des.Proc) {
			p.Delay(0.5)
			for i := 0; i < probes; i++ {
				p.Delay(0.0137) // de-phase from the streamer's cycle
				start := p.Now()
				legs[0].SendToParagon(p, "probe", 100)
				total += p.Now() - start
			}
			k.Stop()
		})
		k.Run()
		return total / probes
	}
	sameLeg := run(true)
	crossLeg := run(false)
	if crossLeg >= sameLeg {
		t.Fatalf("cross-leg latency %v not below same-leg latency %v", crossLeg, sameLeg)
	}
	// The same-leg probe waits for a 4000-word wire occupancy; the
	// cross-leg probe does not.
	wire4000 := DefaultParagonParams(OneHop).Link.PerPacket*4 + 4000/DefaultParagonParams(OneHop).Link.Bandwidth
	if sameLeg-crossLeg < wire4000/4 {
		t.Fatalf("wire relief only %v, want ≥ %v", sameLeg-crossLeg, wire4000/4)
	}
}

func TestSunMultiParagonValidation(t *testing.T) {
	k := des.New()
	if _, err := NewSunMultiParagon(k, DefaultParagonParams(OneHop), 0); err == nil {
		t.Fatal("zero legs accepted")
	}
	p := DefaultParagonParams(OneHop)
	p.HostSpeed = 0
	if _, err := NewSunMultiParagon(k, p, 2); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSunMultiParagonTwoHops(t *testing.T) {
	k := des.New()
	legs, err := NewSunMultiParagon(k, DefaultParagonParams(TwoHops), 2)
	if err != nil {
		t.Fatal(err)
	}
	var arrived float64
	k.Spawn("r", func(p *des.Proc) { arrived = legs[1].RecvOnParagon(p, "x").Arrived })
	k.Spawn("s", func(p *des.Proc) { legs[1].SendToParagon(p, "x", 500) })
	k.Run()
	nx := legs[1].MPP.NXTime(500)
	wire := legs[1].Link.WireTime(500)
	if arrived < nx+wire-1e-9 {
		t.Fatalf("2-HOPS arrival %v below NX+wire %v", arrived, nx+wire)
	}
}
