package prob

import (
	"math"
	"math/rand"
	"testing"
)

// TestRemoveDeconvPropertyRandomized is the property test for the O(p)
// deconvolution removal: across randomized probability vectors —
// including near-0 and near-1 edge probabilities — RemoveDeconv either
// agrees with the full O(p²) rebuild (Remove) to 1e-9 on every point of
// the distribution, or refuses with an error and leaves the Calc
// untouched.
func TestRemoveDeconvPropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	draw := func() float64 {
		switch rng.Intn(5) {
		case 0: // near-0 edge
			return rng.Float64() * 1e-12
		case 1: // near-1 edge
			return 1 - rng.Float64()*1e-12
		case 2: // exact boundaries
			return float64(rng.Intn(2))
		default:
			return rng.Float64()
		}
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = draw()
		}
		idx := rng.Intn(n)

		deconv := MustNew(qs...)
		before := deconv.Dist()
		beforeQs := deconv.Probs()

		rebuilt := MustNew(qs...)
		if err := rebuilt.Remove(idx); err != nil {
			t.Fatalf("trial %d qs=%v idx=%d: Remove: %v", trial, qs, idx, err)
		}

		if err := deconv.RemoveDeconv(idx); err != nil {
			// Declining is allowed (instability near q≈1), but the Calc
			// must be exactly as it was.
			for i, v := range deconv.Dist() {
				if v != before[i] {
					t.Fatalf("trial %d qs=%v idx=%d: failed RemoveDeconv mutated dist[%d]: %v -> %v",
						trial, qs, idx, i, before[i], v)
				}
			}
			for i, q := range deconv.Probs() {
				if q != beforeQs[i] {
					t.Fatalf("trial %d qs=%v idx=%d: failed RemoveDeconv mutated qs[%d]", trial, qs, idx, i)
				}
			}
			continue
		}
		if deconv.N() != rebuilt.N() {
			t.Fatalf("trial %d qs=%v idx=%d: N = %d, want %d", trial, qs, idx, deconv.N(), rebuilt.N())
		}
		for i := 0; i <= rebuilt.N(); i++ {
			got, want := deconv.P(i), rebuilt.P(i)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d qs=%v idx=%d: P(%d) = %.15g, rebuild %.15g (Δ=%g)",
					trial, qs, idx, i, got, want, got-want)
			}
		}
	}
}
