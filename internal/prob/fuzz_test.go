package prob

import (
	"math"
	"testing"
)

// FuzzPoissonBinomial asserts the incremental Poisson-binomial DP never
// panics, keeps every probability in [0,1], and keeps the distribution
// normalized — through adds and both removal algorithms.
func FuzzPoissonBinomial(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 128, 255, 64, 32})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32 {
			data = data[:32]
		}
		c, err := New()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range data {
			q := float64(b) / 255
			if err := c.Add(q); err != nil {
				t.Fatalf("Add(%v) rejected an in-range probability: %v", q, err)
			}
		}
		checkDist := func(c *Calc) {
			sum := 0.0
			for i, p := range c.Dist() {
				if p < -1e-12 || p > 1+1e-12 || math.IsNaN(p) {
					t.Fatalf("P(%d) = %v out of [0,1]", i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("distribution sums to %v, want 1", sum)
			}
		}
		checkDist(c)
		// Remove half via regeneration, half via deconvolution; the
		// latter may decline on unstable inputs but must not corrupt c.
		for c.N() > 0 {
			idx := c.N() / 2
			if c.N()%2 == 0 {
				if err := c.Remove(idx); err != nil {
					t.Fatalf("Remove(%d): %v", idx, err)
				}
			} else if err := c.RemoveDeconv(idx); err != nil {
				if err := c.Remove(idx); err != nil {
					t.Fatalf("fallback Remove(%d): %v", idx, err)
				}
			}
			checkDist(c)
		}
	})
}
