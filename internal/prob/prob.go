// Package prob computes the Poisson-binomial distributions behind the
// paper's pcomp_i and pcomm_i terms: given p contending applications,
// application k being "active" (computing, or communicating) with
// probability q_k independently, P(i) is the probability that exactly i
// of them are active at once.
//
// The paper notes the full distribution is computable by dynamic
// programming in O(p²), that adding an application takes O(p), and that
// removal costs O(p²) by regeneration. Calc implements exactly those
// operations (plus an O(p) deconvolution-based removal for comparison,
// exercised by the ablation benchmarks).
package prob

import (
	"errors"
	"fmt"
	"math"
)

// Calc maintains a Poisson-binomial distribution incrementally.
// The zero value is an empty distribution: P(0) = 1.
type Calc struct {
	qs   []float64 // per-application activity probabilities
	dist []float64 // dist[i] = P(exactly i active), len = len(qs)+1
}

// New returns a Calc over the given activity probabilities.
func New(qs ...float64) (*Calc, error) {
	c := &Calc{dist: []float64{1}}
	for _, q := range qs {
		if err := c.Add(q); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustNew is New but panics on invalid probabilities; for literals.
func MustNew(qs ...float64) *Calc {
	c, err := New(qs...)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Calc) ensure() {
	if c.dist == nil {
		c.dist = []float64{1}
	}
}

// N reports the number of applications in the distribution.
func (c *Calc) N() int { return len(c.qs) }

// Probs returns a copy of the per-application activity probabilities.
func (c *Calc) Probs() []float64 { return append([]float64(nil), c.qs...) }

// Add incorporates one application with activity probability q in O(p).
// The convolution runs in place (top-down over the extended buffer), so
// repeated Adds amortize to zero allocations once capacity is grown.
func (c *Calc) Add(q float64) error {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return fmt.Errorf("prob: probability %v out of [0,1]", q)
	}
	c.ensure()
	n := len(c.dist)
	c.dist = append(c.dist, 0)
	for i := n - 1; i >= 0; i-- {
		c.dist[i+1] += c.dist[i] * q
		c.dist[i] *= 1 - q
	}
	c.qs = append(c.qs, q)
	return nil
}

// Remove deletes the application at index by regenerating the
// distribution from scratch — the paper's O(p²) removal. The rebuild
// runs in the existing buffers (the remaining qs were validated when
// added, so the DP cannot fail), making removal allocation-free.
func (c *Calc) Remove(index int) error {
	if index < 0 || index >= len(c.qs) {
		return fmt.Errorf("prob: remove index %d out of range [0,%d)", index, len(c.qs))
	}
	c.qs = append(c.qs[:index], c.qs[index+1:]...)
	dist, err := AppendDistribution(c.dist, c.qs)
	if err != nil {
		return err
	}
	c.dist = dist
	return nil
}

// RemoveDeconv deletes the application at index in O(p) by
// deconvolving its Bernoulli factor. Numerically safe only when
// q is not extremely close to 1; it validates the result and returns an
// error (leaving the Calc unchanged) when deconvolution is unstable.
func (c *Calc) RemoveDeconv(index int) error {
	if index < 0 || index >= len(c.qs) {
		return fmt.Errorf("prob: remove index %d out of range [0,%d)", index, len(c.qs))
	}
	q := c.qs[index]
	n := len(c.dist) - 1 // current number of apps
	out := make([]float64, n)
	switch {
	case q == 1:
		// All mass had one forced success: shift down.
		for i := 0; i < n; i++ {
			out[i] = c.dist[i+1]
		}
	case q < 0.5:
		// Forward recurrence: dist[i] = out[i-1]q + out[i](1-q).
		out[0] = c.dist[0] / (1 - q)
		for i := 1; i < n; i++ {
			out[i] = (c.dist[i] - out[i-1]*q) / (1 - q)
		}
	default:
		// Backward recurrence, stable for q ≥ 0.5.
		out[n-1] = c.dist[n] / q
		for i := n - 2; i >= 0; i-- {
			out[i] = (c.dist[i+1] - out[i+1]*(1-q)) / q
		}
	}
	sum := 0.0
	for _, v := range out {
		if v < -1e-9 || math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("prob: deconvolution numerically unstable; use Remove")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return errors.New("prob: deconvolution lost normalization; use Remove")
	}
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	c.dist = out
	c.qs = append(c.qs[:index], c.qs[index+1:]...)
	return nil
}

// P returns P(exactly i active). Out-of-range i yields 0.
func (c *Calc) P(i int) float64 {
	c.ensure()
	if i < 0 || i >= len(c.dist) {
		return 0
	}
	return c.dist[i]
}

// PAtLeast returns P(at least i active).
func (c *Calc) PAtLeast(i int) float64 {
	c.ensure()
	if i < 0 {
		i = 0
	}
	s := 0.0
	for j := i; j < len(c.dist); j++ {
		s += c.dist[j]
	}
	return s
}

// Dist returns a copy of the full distribution, index i = P(i active).
func (c *Calc) Dist() []float64 {
	c.ensure()
	return append([]float64(nil), c.dist...)
}

// Mean returns the expected number of active applications (Σ q_k).
func (c *Calc) Mean() float64 {
	s := 0.0
	for _, q := range c.qs {
		s += q
	}
	return s
}

// Distribution is the one-shot O(p²) DP over qs, returning the full
// Poisson-binomial distribution.
func Distribution(qs []float64) ([]float64, error) {
	return AppendDistribution(nil, qs)
}

// AppendDistribution is Distribution into a caller-supplied scratch
// buffer: dst's contents are discarded, its capacity is reused, and the
// resulting distribution (length len(qs)+1) is returned. It is the
// allocation-free DP kernel behind the slowdown caches — callers that
// keep the returned slice as their next dst pay nothing after warm-up.
func AppendDistribution(dst []float64, qs []float64) ([]float64, error) {
	dst = append(dst[:0], 1)
	for _, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, fmt.Errorf("prob: probability %v out of [0,1]", q)
		}
		n := len(dst)
		dst = append(dst, 0)
		for i := n - 1; i >= 0; i-- {
			dst[i+1] += dst[i] * q
			dst[i] *= 1 - q
		}
	}
	return dst, nil
}
