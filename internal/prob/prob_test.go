package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptyDistribution(t *testing.T) {
	var c Calc
	if got := c.P(0); got != 1 {
		t.Fatalf("P(0) of empty = %v, want 1", got)
	}
	if got := c.P(1); got != 0 {
		t.Fatalf("P(1) of empty = %v, want 0", got)
	}
	if c.N() != 0 {
		t.Fatalf("N = %d, want 0", c.N())
	}
}

func TestPaperExample(t *testing.T) {
	// The paper's §3.2.1 example: p = 2, one app communicates 20% /
	// computes 80%, the other communicates 30% / computes 70%.
	comm := MustNew(0.2, 0.3)
	comp := MustNew(0.8, 0.7)

	if got, want := comm.P(1), 0.2*0.7+0.3*0.8; !approx(got, want, 1e-12) {
		t.Errorf("pcomm_1 = %v, want %v", got, want)
	}
	if got, want := comm.P(2), 0.2*0.3; !approx(got, want, 1e-12) {
		t.Errorf("pcomm_2 = %v, want %v", got, want)
	}
	if got, want := comp.P(1), 0.2*0.7+0.3*0.8; !approx(got, want, 1e-12) {
		t.Errorf("pcomp_1 = %v, want %v", got, want)
	}
	if got, want := comp.P(2), 0.7*0.8; !approx(got, want, 1e-12) {
		t.Errorf("pcomp_2 = %v, want %v", got, want)
	}
}

func TestSingleApp(t *testing.T) {
	c := MustNew(0.25)
	if !approx(c.P(0), 0.75, 1e-12) || !approx(c.P(1), 0.25, 1e-12) {
		t.Fatalf("dist = %v", c.Dist())
	}
}

func TestBinomialSpecialCase(t *testing.T) {
	// Equal probabilities reduce to a binomial distribution.
	const n, q = 6, 0.3
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = q
	}
	c := MustNew(qs...)
	choose := func(n, k int) float64 {
		r := 1.0
		for i := 0; i < k; i++ {
			r *= float64(n-i) / float64(i+1)
		}
		return r
	}
	for k := 0; k <= n; k++ {
		want := choose(n, k) * math.Pow(q, float64(k)) * math.Pow(1-q, float64(n-k))
		if !approx(c.P(k), want, 1e-12) {
			t.Fatalf("P(%d) = %v, want %v", k, c.P(k), want)
		}
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	var c Calc
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if err := c.Add(q); err == nil {
			t.Errorf("Add(%v) did not error", q)
		}
	}
	if c.N() != 0 {
		t.Fatalf("invalid adds changed state: N = %d", c.N())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(0.5, 2.0); err == nil {
		t.Fatal("New with invalid probability did not error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid probability did not panic")
		}
	}()
	MustNew(-1)
}

func TestRemoveMatchesRebuild(t *testing.T) {
	c := MustNew(0.1, 0.5, 0.9, 0.3)
	if err := c.Remove(2); err != nil {
		t.Fatal(err)
	}
	want := MustNew(0.1, 0.5, 0.3)
	for i := 0; i <= 3; i++ {
		if !approx(c.P(i), want.P(i), 1e-12) {
			t.Fatalf("after Remove, P(%d) = %v, want %v", i, c.P(i), want.P(i))
		}
	}
	if err := c.Remove(10); err == nil {
		t.Fatal("Remove out of range did not error")
	}
}

func TestRemoveDeconvMatchesRebuild(t *testing.T) {
	cases := [][]float64{
		{0.2, 0.7, 0.4},
		{0.9, 0.9, 0.9},
		{0.05, 0.5, 0.95},
		{1.0, 0.5},
		{0.0, 0.5},
	}
	for _, qs := range cases {
		for idx := range qs {
			c := MustNew(qs...)
			if err := c.RemoveDeconv(idx); err != nil {
				t.Fatalf("qs=%v idx=%d: %v", qs, idx, err)
			}
			rest := append(append([]float64(nil), qs[:idx]...), qs[idx+1:]...)
			want := MustNew(rest...)
			for i := 0; i <= len(rest); i++ {
				if !approx(c.P(i), want.P(i), 1e-9) {
					t.Fatalf("qs=%v idx=%d: P(%d) = %v, want %v", qs, idx, i, c.P(i), want.P(i))
				}
			}
		}
	}
}

func TestRemoveDeconvOutOfRange(t *testing.T) {
	c := MustNew(0.5)
	if err := c.RemoveDeconv(1); err == nil {
		t.Fatal("RemoveDeconv out of range did not error")
	}
}

func TestPAtLeast(t *testing.T) {
	c := MustNew(0.5, 0.5)
	if !approx(c.PAtLeast(1), 0.75, 1e-12) {
		t.Fatalf("PAtLeast(1) = %v, want 0.75", c.PAtLeast(1))
	}
	if !approx(c.PAtLeast(0), 1, 1e-12) {
		t.Fatalf("PAtLeast(0) = %v, want 1", c.PAtLeast(0))
	}
	if c.PAtLeast(3) != 0 {
		t.Fatalf("PAtLeast(3) = %v, want 0", c.PAtLeast(3))
	}
	if !approx(c.PAtLeast(-1), 1, 1e-12) {
		t.Fatalf("PAtLeast(-1) = %v, want 1", c.PAtLeast(-1))
	}
}

func TestMean(t *testing.T) {
	c := MustNew(0.2, 0.3, 0.5)
	if !approx(c.Mean(), 1.0, 1e-12) {
		t.Fatalf("Mean = %v, want 1", c.Mean())
	}
}

func TestDistributionFunction(t *testing.T) {
	d, err := Distribution([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if !approx(d[i], want[i], 1e-12) {
			t.Fatalf("Distribution = %v, want %v", d, want)
		}
	}
	if _, err := Distribution([]float64{-1}); err == nil {
		t.Fatal("Distribution with invalid prob did not error")
	}
}

// Property: the distribution always sums to 1 and is non-negative.
func TestDistributionNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = r.Float64()
		}
		c := MustNew(qs...)
		sum := 0.0
		for _, v := range c.Dist() {
			if v < 0 {
				return false
			}
			sum += v
		}
		return approx(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: expected value of the distribution equals Σq (linearity).
func TestDistributionMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		qs := make([]float64, n)
		sumQ := 0.0
		for i := range qs {
			qs[i] = r.Float64()
			sumQ += qs[i]
		}
		c := MustNew(qs...)
		ev := 0.0
		for i, v := range c.Dist() {
			ev += float64(i) * v
		}
		return approx(ev, sumQ, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Remove(last) round-trips the distribution.
func TestAddRemoveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = r.Float64()
		}
		c := MustNew(qs...)
		before := c.Dist()
		if err := c.Add(r.Float64()); err != nil {
			return false
		}
		if err := c.Remove(n); err != nil {
			return false
		}
		after := c.Dist()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if !approx(before[i], after[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddIncremental(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var c Calc
		for j := 0; j < 16; j++ {
			_ = c.Add(0.4)
		}
	}
}

func BenchmarkRemoveRebuild(b *testing.B) {
	qs := make([]float64, 16)
	for i := range qs {
		qs[i] = 0.4
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := MustNew(qs...)
		_ = c.Remove(8)
	}
}

func BenchmarkRemoveDeconv(b *testing.B) {
	qs := make([]float64, 16)
	for i := range qs {
		qs[i] = 0.4
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := MustNew(qs...)
		_ = c.RemoveDeconv(8)
	}
}

// Cross-check: the DP distribution agrees with Monte-Carlo sampling of
// independent Bernoulli draws.
func TestDistributionMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	qs := []float64{0.15, 0.5, 0.8, 0.33}
	c := MustNew(qs...)
	const samples = 200000
	counts := make([]int, len(qs)+1)
	for s := 0; s < samples; s++ {
		k := 0
		for _, q := range qs {
			if rng.Float64() < q {
				k++
			}
		}
		counts[k]++
	}
	for i := 0; i <= len(qs); i++ {
		emp := float64(counts[i]) / samples
		if math.Abs(emp-c.P(i)) > 0.005 {
			t.Fatalf("P(%d): DP %v vs Monte-Carlo %v", i, c.P(i), emp)
		}
	}
}
