package prob

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceDist enumerates all 2^p subsets of the success
// probabilities — the definitional Poisson-binomial distribution the
// O(p²) dynamic program must reproduce.
func bruteForceDist(qs []float64) []float64 {
	p := len(qs)
	dist := make([]float64, p+1)
	for mask := 0; mask < 1<<p; mask++ {
		prob, k := 1.0, 0
		for i := 0; i < p; i++ {
			if mask&(1<<i) != 0 {
				prob *= qs[i]
				k++
			} else {
				prob *= 1 - qs[i]
			}
		}
		dist[k] += prob
	}
	return dist
}

// randomQs draws p probabilities, mixing interior values with the 0/1
// edge cases that stress the DP's boundary handling.
func randomQs(rng *rand.Rand, p int) []float64 {
	qs := make([]float64, p)
	for i := range qs {
		switch rng.Intn(10) {
		case 0:
			qs[i] = 0
		case 1:
			qs[i] = 1
		default:
			qs[i] = rng.Float64()
		}
	}
	return qs
}

// TestPropertyDistributionSumsToOne: for random probability vectors up
// to p = 64, the computed distribution is a distribution — every mass
// non-negative and the total within 1e-9 of 1.
func TestPropertyDistributionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		p := rng.Intn(65)
		qs := randomQs(rng, p)
		c, err := New(qs...)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		dist := c.Dist()
		if len(dist) != p+1 {
			t.Fatalf("trial %d: |dist| = %d, want %d", trial, len(dist), p+1)
		}
		sum := 0.0
		for k, m := range dist {
			if m < 0 || m > 1 {
				t.Fatalf("trial %d: P(%d) = %v outside [0, 1] (qs %v)", trial, k, m, qs)
			}
			sum += m
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: distribution sums to %v, |err| %.3g > 1e-9 (p = %d)",
				trial, sum, math.Abs(sum-1), p)
		}
	}
}

// TestPropertyDPMatchesBruteForce: the O(p²) dynamic program agrees
// with exhaustive 2^p subset enumeration for every p ≤ 12.
func TestPropertyDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for p := 0; p <= 12; p++ {
		for trial := 0; trial < 50; trial++ {
			qs := randomQs(rng, p)
			c, err := New(qs...)
			if err != nil {
				t.Fatalf("p=%d trial %d: New: %v", p, trial, err)
			}
			got := c.Dist()
			want := bruteForceDist(qs)
			for k := 0; k <= p; k++ {
				// 2^p products of ≤1 factors: brute force itself carries
				// rounding, so compare to a tolerance scaled for p = 12.
				if math.Abs(got[k]-want[k]) > 1e-12 {
					t.Fatalf("p=%d trial %d: P(%d) DP %v brute %v (Δ %.3g)\nqs %v",
						p, trial, k, got[k], want[k], math.Abs(got[k]-want[k]), qs)
				}
			}
		}
	}
}

// TestPropertyIncrementalMatchesBatch: building the same multiset via
// repeated Add matches constructing it in one shot, and PAtLeast is a
// proper complementary CDF (non-increasing, PAtLeast(0) = 1).
func TestPropertyIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(12)
		qs := randomQs(rng, p)
		batch := MustNew(qs...)
		inc := MustNew()
		for _, q := range qs {
			if err := inc.Add(q); err != nil {
				t.Fatalf("trial %d: Add(%v): %v", trial, q, err)
			}
		}
		bd, id := batch.Dist(), inc.Dist()
		for k := range bd {
			if math.Abs(bd[k]-id[k]) > 1e-12 {
				t.Fatalf("trial %d: P(%d) batch %v incremental %v", trial, k, bd[k], id[k])
			}
		}
		if math.Abs(batch.PAtLeast(0)-1) > 1e-9 {
			t.Fatalf("trial %d: PAtLeast(0) = %v, want 1", trial, batch.PAtLeast(0))
		}
		prev := batch.PAtLeast(0)
		for k := 1; k <= p; k++ {
			cur := batch.PAtLeast(k)
			if cur > prev+1e-12 {
				t.Fatalf("trial %d: PAtLeast(%d) = %v > PAtLeast(%d) = %v", trial, k, cur, k-1, prev)
			}
			prev = cur
		}
	}
}
