package rm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission is the wall-clock admission controller for the online
// serving path. The DES-driven Manager above admits *applications* to
// the simulated platform in virtual time; Admission plays the same role
// for *prediction requests* hitting the serving daemon in real time: a
// bounded number run concurrently, a bounded number may wait, and
// everything beyond that is rejected immediately — the same explicit
// ErrQueueFull / ErrSubmitTimeout contract as the Manager's bounded
// batch queue, so callers handle both layers uniformly.
//
// Admission is goroutine-safe. The zero value is not usable; build one
// with NewAdmission.
type Admission struct {
	slots chan struct{} // capacity = max concurrent holders

	mu         sync.Mutex
	waiting    int
	maxWaiting int // config bound; 0 = no waiting allowed beyond slots

	admitted int64
	rejected int64
	timedOut int64
	peakWait int
}

// NewAdmission returns a controller allowing maxInFlight concurrent
// holders (<= 0 selects 1) and at most maxQueue waiters beyond that
// (<= 0 means no waiting: a request that cannot run immediately is
// rejected with ErrQueueFull).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight <= 0 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{slots: make(chan struct{}, maxInFlight), maxWaiting: maxQueue}
}

// Acquire takes an admission slot, waiting (bounded by the queue limit)
// until one frees or ctx expires. It returns nil on admission,
// ErrQueueFull when the wait queue is at capacity, and ErrSubmitTimeout
// (wrapping ctx.Err) when the context ends first. Every nil return must
// be paired with exactly one Release.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return nil
	default:
	}

	a.mu.Lock()
	if a.waiting >= a.maxWaiting {
		a.rejected++
		a.mu.Unlock()
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, a.maxWaiting)
	}
	a.waiting++
	if a.waiting > a.peakWait {
		a.peakWait = a.waiting
	}
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		a.timedOut++
		a.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrSubmitTimeout, ctx.Err())
	}
}

// TryAcquire takes a slot only if one is free right now, reporting
// whether it did. It never waits and never consumes queue capacity —
// the serving fast path uses it to stay off the batcher when a slot is
// instantly available, falling back to the full Acquire pipeline (with
// its bounded waiting and typed rejections) when it is not. A true
// return must be paired with exactly one Release.
func (a *Admission) TryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		a.mu.Lock()
		a.admitted++
		a.mu.Unlock()
		return true
	default:
		return false
	}
}

// Release frees a slot taken by a successful Acquire.
func (a *Admission) Release() {
	select {
	case <-a.slots:
	default:
		panic("rm: Admission.Release without matching Acquire")
	}
}

// InFlight reports the number of currently admitted holders.
func (a *Admission) InFlight() int { return len(a.slots) }

// Waiting reports the number of requests parked for a slot.
func (a *Admission) Waiting() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// Drain blocks until no request is admitted or waiting, or until ctx
// ends (returning its error). It does not fence new admissions — the
// caller stops routing work in first (readiness flip, listener close),
// then drains. Polling is deliberate: drain runs once per shutdown with
// a deadline measured in seconds, so a millisecond poll is invisible.
func (a *Admission) Drain(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if a.InFlight() == 0 && a.Waiting() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("rm: drain interrupted with %d in flight, %d waiting: %w",
				a.InFlight(), a.Waiting(), ctx.Err())
		case <-tick.C:
		}
	}
}

// AdmissionStats is a point-in-time summary of an Admission controller.
type AdmissionStats struct {
	Admitted, Rejected, TimedOut int64
	PeakWaiting                  int
}

// Stats returns cumulative admission counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Admitted: a.admitted, Rejected: a.rejected, TimedOut: a.timedOut,
		PeakWaiting: a.peakWait,
	}
}

// IsRejection reports whether err is an explicit admission rejection
// (full queue or timeout) as opposed to an internal failure.
func IsRejection(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrSubmitTimeout)
}
