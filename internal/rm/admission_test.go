package rm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediate(t *testing.T) {
	a := NewAdmission(2, 0)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}
	// No waiting allowed: the third is rejected immediately.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: %v, want ErrQueueFull", err)
	}
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	a.Release()
	a.Release()
	st := a.Stats()
	if st.Admitted != 3 || st.Rejected != 1 {
		t.Fatalf("stats %+v, want 3 admitted 1 rejected", st)
	}
}

func TestAdmissionWaitsThenAdmits(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	got := make(chan error, 1)
	go func() { got <- a.Acquire(context.Background()) }()
	deadline := time.Now().Add(time.Second)
	for a.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	a.Release()
	if err := <-got; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	a.Release()
	if st := a.Stats(); st.PeakWaiting != 1 {
		t.Fatalf("peak waiting %d, want 1", st.PeakWaiting)
	}
}

func TestAdmissionTimeout(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := a.Acquire(ctx)
	if !errors.Is(err, ErrSubmitTimeout) {
		t.Fatalf("waiter: %v, want ErrSubmitTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error does not wrap ctx cause: %v", err)
	}
	if a.Waiting() != 0 {
		t.Fatalf("waiting %d after timeout, want 0", a.Waiting())
	}
	a.Release()
	if st := a.Stats(); st.TimedOut != 1 {
		t.Fatalf("timed out %d, want 1", st.TimedOut)
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Acquire(ctx) // parked until cancel
		}()
	}
	deadline := time.Now().Add(time.Second)
	for a.Waiting() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked (waiting %d)", a.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound acquire: %v, want ErrQueueFull", err)
	}
	cancel()
	wg.Wait()
	a.Release()
}

func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission(4, 64)
	var wg sync.WaitGroup
	var held sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := a.Acquire(ctx); err != nil {
				if !IsRejection(err) {
					t.Errorf("worker %d: unexpected error %v", i, err)
				}
				return
			}
			held.Store(i, true)
			if n := a.InFlight(); n > 4 {
				t.Errorf("in-flight %d exceeds bound", n)
			}
			time.Sleep(time.Millisecond)
			a.Release()
		}(i)
	}
	wg.Wait()
	if a.InFlight() != 0 || a.Waiting() != 0 {
		t.Fatalf("leaked slots: in-flight %d waiting %d", a.InFlight(), a.Waiting())
	}
}
