package rm

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionDrainWaitsForInFlight(t *testing.T) {
	a := NewAdmission(4, 4)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := a.Acquire(ctx); err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
	}

	done := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		done <- a.Drain(dctx)
	}()

	// Drain must not return while work is in flight.
	select {
	case err := <-done:
		t.Fatalf("Drain returned with 3 in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	for i := 0; i < 3; i++ {
		a.Release()
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain never returned after all releases")
	}
}

func TestAdmissionDrainHonorsContext(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := a.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain under stuck in-flight = %v, want deadline exceeded", err)
	}
}

func TestAdmissionDrainEmptyReturnsImmediately(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("Drain on idle admission: %v", err)
	}
}
