// Package rm is the resource-management layer the paper assumes exists
// around the model: "we assume we know the set of all applications
// executing on the system … this information may be provided by the
// users or obtained from the resource management system" (§2). The
// manager admits applications to the coupled platform (queueing MPP
// partition requests as the SDSC batch scheduler of the paper's
// reference [18] did, with optional backfill over the non-contiguous
// allocator), tracks each application's workload descriptor and working
// set, and maintains the incremental slowdown state (core.System) that
// an on-line scheduler queries.
package rm

import (
	"errors"
	"fmt"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/cpu"
	"contention/internal/des"
	"contention/internal/mesh"
)

// AppDescriptor registers one application with the manager.
type AppDescriptor struct {
	// Name identifies the application (unique among running apps).
	Name string
	// Contender is the workload characterization the model consumes.
	Contender core.Contender
	// WorkingSetPages reserves front-end memory (0 = negligible).
	WorkingSetPages int
	// Nodes requests an MPP partition of that size (0 = host-only).
	Nodes int
}

// Validate checks the descriptor.
func (d AppDescriptor) Validate() error {
	if d.Name == "" {
		return errors.New("rm: empty application name")
	}
	if err := d.Contender.Validate(); err != nil {
		return err
	}
	if d.WorkingSetPages < 0 {
		return fmt.Errorf("rm: negative working set %d", d.WorkingSetPages)
	}
	if d.Nodes < 0 {
		return fmt.Errorf("rm: negative node request %d", d.Nodes)
	}
	return nil
}

// Config describes the managed platform pieces.
type Config struct {
	// Tables feed the incremental slowdown state.
	Tables core.DelayTables
	// MPP, when non-nil, is the space-shared back end partitions are
	// allocated from.
	MPP *mesh.Machine
	// Host, when non-nil (and configured with memory), tracks working
	// sets.
	Host *cpu.Host
	// Backfill admits queued requests out of order when they fit; off,
	// the queue is strict FCFS.
	Backfill bool
	// MaxQueue bounds the admission queue: a partition request arriving
	// with MaxQueue requests already parked is rejected with ErrQueueFull
	// instead of parking forever. 0 = unbounded (the seed behavior).
	MaxQueue int
	// SubmitTimeout bounds the virtual time a Submit may spend parked in
	// the admission queue; on expiry the request is withdrawn and Submit
	// returns ErrSubmitTimeout. 0 = wait forever.
	SubmitTimeout float64
	// Trust, when non-nil, is the calibration trust tracker whose state
	// Health() surfaces to schedulers: a scheduler consulting slowdowns
	// built from a stale or degraded calibration should know.
	Trust *caltrust.Tracker
}

// ErrQueueFull is returned when the bounded admission queue is at
// capacity — explicit rejection instead of unbounded parking.
var ErrQueueFull = errors.New("rm: admission queue full")

// ErrSubmitTimeout is returned when a queued partition request is not
// granted within Config.SubmitTimeout of virtual time.
var ErrSubmitTimeout = errors.New("rm: submit timed out in admission queue")

// Manager is the resource manager.
type Manager struct {
	k   *des.Kernel
	cfg Config
	sys *core.System

	running map[string]*Running
	queue   []*pending

	admitted    int
	rejected    int
	totalWait   float64
	maxQueueLen int
}

type pending struct {
	desc     AppDescriptor
	proc     *des.Proc
	enqueued float64
	granted  *mesh.Partition
	err      error
	timer    *des.Event // submit-timeout event, canceled on grant
}

// Running is an admitted application.
type Running struct {
	m         *Manager
	desc      AppDescriptor
	partition *mesh.Partition
	residency *cpu.Residency
	index     int // position in the manager's contender state
	admitted  float64
	released  bool
}

// New builds a manager.
func New(k *des.Kernel, cfg Config) (*Manager, error) {
	sys, err := core.NewSystem(cfg.Tables)
	if err != nil {
		return nil, err
	}
	return &Manager{k: k, cfg: cfg, sys: sys, running: map[string]*Running{}}, nil
}

// Submit admits the application, blocking p in the batch queue while an
// MPP partition request cannot be satisfied. Host-only applications are
// admitted immediately.
func (m *Manager) Submit(p *des.Proc, desc AppDescriptor) (*Running, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if _, dup := m.running[desc.Name]; dup {
		return nil, fmt.Errorf("rm: application %q already running", desc.Name)
	}
	var part *mesh.Partition
	if desc.Nodes > 0 {
		if m.cfg.MPP == nil {
			return nil, fmt.Errorf("rm: %q requests %d nodes but no MPP is managed", desc.Name, desc.Nodes)
		}
		if desc.Nodes > m.cfg.MPP.Config().Nodes {
			m.rejected++
			return nil, fmt.Errorf("rm: %q requests %d nodes, machine has %d", desc.Name, desc.Nodes, m.cfg.MPP.Config().Nodes)
		}
		var err error
		part, err = m.tryAllocate(desc)
		if err != nil {
			return nil, err
		}
		if part == nil {
			// Queue and park until a release grants the request, the
			// bounded queue rejects it, or the submit timeout expires.
			if m.cfg.MaxQueue > 0 && len(m.queue) >= m.cfg.MaxQueue {
				m.rejected++
				return nil, fmt.Errorf("rm: %q: %w (depth %d)", desc.Name, ErrQueueFull, len(m.queue))
			}
			pend := &pending{desc: desc, proc: p, enqueued: p.Now()}
			if m.cfg.SubmitTimeout > 0 {
				pend.timer = m.k.After(m.cfg.SubmitTimeout, func() { m.expire(pend) })
			}
			m.queue = append(m.queue, pend)
			if len(m.queue) > m.maxQueueLen {
				m.maxQueueLen = len(m.queue)
			}
			p.Park()
			if pend.timer != nil {
				m.k.Cancel(pend.timer)
			}
			if pend.err != nil {
				return nil, pend.err
			}
			part = pend.granted
			m.totalWait += p.Now() - pend.enqueued
		}
	}
	return m.admit(p, desc, part)
}

// tryAllocate attempts an immediate allocation; a nil partition with a
// nil error means "must queue". Strict FCFS refuses to jump a non-empty
// queue even when space exists.
func (m *Manager) tryAllocate(desc AppDescriptor) (*mesh.Partition, error) {
	if !m.cfg.Backfill && len(m.queue) > 0 {
		return nil, nil
	}
	part, err := m.cfg.MPP.Allocate(desc.Name, desc.Nodes)
	if err != nil {
		if errors.Is(err, mesh.ErrInsufficientNodes) {
			return nil, nil
		}
		return nil, err
	}
	return part, nil
}

func (m *Manager) admit(p *des.Proc, desc AppDescriptor, part *mesh.Partition) (*Running, error) {
	var res *cpu.Residency
	if m.cfg.Host != nil && desc.WorkingSetPages > 0 {
		var err error
		res, err = m.cfg.Host.Reserve(desc.WorkingSetPages)
		if err != nil {
			if part != nil {
				part.Release()
			}
			return nil, err
		}
	}
	if err := m.sys.Add(desc.Contender); err != nil {
		if part != nil {
			part.Release()
		}
		if res != nil {
			res.Release()
		}
		return nil, err
	}
	r := &Running{
		m:         m,
		desc:      desc,
		partition: part,
		residency: res,
		index:     m.sys.Len() - 1,
		admitted:  p.Now(),
	}
	m.running[desc.Name] = r
	m.admitted++
	return r, nil
}

// Release returns the application's resources and wakes queued
// requests that now fit. Idempotent.
func (r *Running) Release() error {
	if r.released {
		return nil
	}
	r.released = true
	m := r.m
	delete(m.running, r.desc.Name)
	// Remove this application's contender entry; later entries shift.
	if err := m.sys.Remove(r.index); err != nil {
		return err
	}
	for _, other := range m.running {
		if other.index > r.index {
			other.index--
		}
	}
	if r.residency != nil {
		r.residency.Release()
	}
	if r.partition != nil {
		r.partition.Release()
		m.drainQueue()
	}
	return nil
}

// expire withdraws a still-queued request whose submit timeout fired.
// A request already granted or failed (and merely not yet resumed) is
// left alone.
func (m *Manager) expire(pend *pending) {
	for i, q := range m.queue {
		if q == pend {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			pend.err = fmt.Errorf("rm: %q: %w after %.4gs", pend.desc.Name, ErrSubmitTimeout, m.cfg.SubmitTimeout)
			m.rejected++
			pend.proc.Resume()
			return
		}
	}
}

// drainQueue grants queued requests in order; with backfill enabled,
// any request that fits is granted, otherwise only a prefix.
func (m *Manager) drainQueue() {
	keep := m.queue[:0]
	blockedHead := false
	for _, pend := range m.queue {
		grant := !blockedHead || m.cfg.Backfill
		if grant {
			part, err := m.cfg.MPP.Allocate(pend.desc.Name, pend.desc.Nodes)
			switch {
			case err == nil:
				pend.granted = part
				pend.proc.Resume()
				continue
			case errors.Is(err, mesh.ErrInsufficientNodes):
				blockedHead = true
			default:
				pend.err = err
				pend.proc.Resume()
				continue
			}
		}
		keep = append(keep, pend)
	}
	m.queue = keep
}

// Descriptor returns the registration.
func (r *Running) Descriptor() AppDescriptor { return r.desc }

// Partition returns the MPP partition (nil for host-only apps).
func (r *Running) Partition() *mesh.Partition { return r.partition }

// AdmittedAt reports the admission time.
func (r *Running) AdmittedAt() float64 { return r.admitted }

// Contenders returns the workload set as seen by the named application
// (its own entry excluded) — exactly what the slowdown formulas take.
func (m *Manager) Contenders(exclude string) []core.Contender {
	out := make([]core.Contender, 0, len(m.running))
	for name, r := range m.running {
		if name == exclude {
			continue
		}
		out = append(out, r.desc.Contender)
	}
	return out
}

// WorkingSets returns the working sets of every running application
// except the named one (for the memory extension).
func (m *Manager) WorkingSets(exclude string) []int {
	out := make([]int, 0, len(m.running))
	for name, r := range m.running {
		if name == exclude {
			continue
		}
		out = append(out, r.desc.WorkingSetPages)
	}
	return out
}

// Running reports the number of admitted applications.
func (m *Manager) Running() int { return len(m.running) }

// Queued reports the number of parked partition requests.
func (m *Manager) Queued() int { return len(m.queue) }

// Admitted reports the total number of admissions.
func (m *Manager) Admitted() int { return m.admitted }

// Rejected reports the total number of explicit rejections (oversized
// requests, full queue, submit timeouts).
func (m *Manager) Rejected() int { return m.rejected }

// MaxQueueLen reports the peak queue length.
func (m *Manager) MaxQueueLen() int { return m.maxQueueLen }

// TotalWait reports the cumulative queue wait time.
func (m *Manager) TotalWait() float64 { return m.totalWait }

// Health reports the calibration trust state backing the manager's
// slowdown answers, with a human-readable reason when not fresh. A
// manager configured without a trust tracker reports Fresh — the seed
// behavior, where calibrations were trusted unconditionally.
func (m *Manager) Health() (caltrust.TrustState, string) {
	if m.cfg.Trust == nil {
		return caltrust.Fresh, ""
	}
	return m.cfg.Trust.State(), m.cfg.Trust.Reason()
}

// CommSlowdownAll evaluates the communication slowdown over the full
// running set (what a newly arriving application would experience).
func (m *Manager) CommSlowdownAll() float64 { return m.sys.CommSlowdown() }

// CompSlowdownAll evaluates the computation slowdown over the full set.
func (m *Manager) CompSlowdownAll() (float64, error) { return m.sys.CompSlowdown() }
