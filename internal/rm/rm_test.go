package rm

import (
	"errors"
	"math"
	"testing"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/cpu"
	"contention/internal/des"
	"contention/internal/mesh"
)

func testTables() core.DelayTables {
	return core.DelayTables{
		CompOnComm: []float64{0.4, 0.8, 1.2},
		CommOnComm: []float64{0.3, 0.6, 0.9},
		CommOnComp: map[int][]float64{500: {0.5, 1.0, 1.5}},
	}
}

func newManager(t *testing.T, k *des.Kernel, backfill bool) (*Manager, *mesh.Machine) {
	t.Helper()
	mpp := mesh.MustNew(k, mesh.Config{Name: "p", Nodes: 16, NodeSpeed: 1, NXBeta: 1e6})
	m, err := New(k, Config{Tables: testTables(), MPP: mpp, Backfill: backfill})
	if err != nil {
		t.Fatal(err)
	}
	return m, mpp
}

func TestDescriptorValidation(t *testing.T) {
	bad := []AppDescriptor{
		{Name: ""},
		{Name: "a", Contender: core.Contender{CommFraction: 2}},
		{Name: "a", WorkingSetPages: -1},
		{Name: "a", Nodes: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHostOnlyAdmissionIsImmediate(t *testing.T) {
	k := des.New()
	m, _ := newManager(t, k, false)
	k.Spawn("a", func(p *des.Proc) {
		r, err := m.Submit(p, AppDescriptor{Name: "app", Contender: core.Contender{CommFraction: 0.3, MsgWords: 500}})
		if err != nil {
			t.Error(err)
			return
		}
		if p.Now() != 0 {
			t.Errorf("admitted at %v, want 0", p.Now())
		}
		if m.Running() != 1 {
			t.Errorf("Running = %d", m.Running())
		}
		if err := r.Release(); err != nil {
			t.Error(err)
		}
		if err := r.Release(); err != nil { // idempotent
			t.Error(err)
		}
	})
	k.Run()
	if m.Running() != 0 || m.Admitted() != 1 {
		t.Fatalf("final state running=%d admitted=%d", m.Running(), m.Admitted())
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	k := des.New()
	m, _ := newManager(t, k, false)
	k.Spawn("a", func(p *des.Proc) {
		if _, err := m.Submit(p, AppDescriptor{Name: "x"}); err != nil {
			t.Error(err)
		}
		if _, err := m.Submit(p, AppDescriptor{Name: "x"}); err == nil {
			t.Error("duplicate accepted")
		}
	})
	k.Run()
}

func TestPartitionQueueingFCFS(t *testing.T) {
	k := des.New()
	m, mpp := newManager(t, k, false)
	var admitTimes []float64
	// First app takes 12 of 16 nodes for 5 seconds.
	k.Spawn("big", func(p *des.Proc) {
		r, err := m.Submit(p, AppDescriptor{Name: "big", Nodes: 12})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(5)
		_ = r.Release()
	})
	// Second app (8 nodes, does not fit) must wait for the release;
	// third (2 nodes, would fit) must queue behind it without backfill.
	k.Spawn("second", func(p *des.Proc) {
		p.Delay(0.1)
		r, err := m.Submit(p, AppDescriptor{Name: "second", Nodes: 8})
		if err != nil {
			t.Error(err)
			return
		}
		admitTimes = append(admitTimes, p.Now())
		p.Delay(1)
		_ = r.Release()
	})
	k.Spawn("third", func(p *des.Proc) {
		p.Delay(0.2)
		r, err := m.Submit(p, AppDescriptor{Name: "third", Nodes: 2})
		if err != nil {
			t.Error(err)
			return
		}
		admitTimes = append(admitTimes, p.Now())
		_ = r.Release()
	})
	k.Run()
	if len(admitTimes) != 2 {
		t.Fatalf("admissions: %v", admitTimes)
	}
	if math.Abs(admitTimes[0]-5) > 1e-9 {
		t.Fatalf("second admitted at %v, want 5 (waits for big)", admitTimes[0])
	}
	if admitTimes[1] < admitTimes[0]-1e-9 {
		t.Fatalf("third admitted at %v before second %v (FCFS violated)", admitTimes[1], admitTimes[0])
	}
	if m.TotalWait() <= 0 || m.MaxQueueLen() < 2 {
		t.Fatalf("wait accounting %v / %d", m.TotalWait(), m.MaxQueueLen())
	}
	if mpp.InUse() != 0 {
		t.Fatalf("nodes leaked: %d in use", mpp.InUse())
	}
}

func TestBackfillAdmitsSmallJobEarly(t *testing.T) {
	k := des.New()
	m, _ := newManager(t, k, true)
	var thirdAt float64
	k.Spawn("big", func(p *des.Proc) {
		r, _ := m.Submit(p, AppDescriptor{Name: "big", Nodes: 12})
		p.Delay(5)
		_ = r.Release()
	})
	k.Spawn("second", func(p *des.Proc) {
		p.Delay(0.1)
		r, err := m.Submit(p, AppDescriptor{Name: "second", Nodes: 8})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(1)
		_ = r.Release()
	})
	k.Spawn("third", func(p *des.Proc) {
		p.Delay(0.2)
		r, err := m.Submit(p, AppDescriptor{Name: "third", Nodes: 2})
		if err != nil {
			t.Error(err)
			return
		}
		thirdAt = p.Now()
		_ = r.Release()
	})
	k.Run()
	// With backfill the 2-node job runs immediately (4 nodes free).
	if math.Abs(thirdAt-0.2) > 1e-9 {
		t.Fatalf("third admitted at %v, want 0.2 (backfill)", thirdAt)
	}
}

func TestOversizeRequestRejected(t *testing.T) {
	k := des.New()
	m, _ := newManager(t, k, false)
	k.Spawn("a", func(p *des.Proc) {
		if _, err := m.Submit(p, AppDescriptor{Name: "huge", Nodes: 17}); err == nil {
			t.Error("17-node request on a 16-node machine accepted")
		}
	})
	k.Run()
}

func TestNodesWithoutMPPRejected(t *testing.T) {
	k := des.New()
	m, err := New(k, Config{Tables: testTables()})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("a", func(p *des.Proc) {
		if _, err := m.Submit(p, AppDescriptor{Name: "x", Nodes: 2}); err == nil {
			t.Error("node request without MPP accepted")
		}
	})
	k.Run()
}

func TestContenderRegistryTracksAdmissions(t *testing.T) {
	k := des.New()
	m, _ := newManager(t, k, false)
	k.Spawn("a", func(p *des.Proc) {
		r1, err := m.Submit(p, AppDescriptor{Name: "one", Contender: core.Contender{CommFraction: 0.2, MsgWords: 500}})
		if err != nil {
			t.Error(err)
			return
		}
		r2, err := m.Submit(p, AppDescriptor{Name: "two", Contender: core.Contender{CommFraction: 0.7, MsgWords: 500}})
		if err != nil {
			t.Error(err)
			return
		}
		// The view excluding "one" holds only "two".
		cs := m.Contenders("one")
		if len(cs) != 1 || cs[0].CommFraction != 0.7 {
			t.Errorf("Contenders(one) = %v", cs)
		}
		// Manager-wide slowdown matches the batch formula.
		all := []core.Contender{r1.Descriptor().Contender, r2.Descriptor().Contender}
		want, err := core.CommSlowdown(all, testTables())
		if err != nil {
			t.Error(err)
			return
		}
		if got := m.CommSlowdownAll(); math.Abs(got-want) > 1e-12 {
			t.Errorf("CommSlowdownAll = %v, want %v", got, want)
		}
		if _, err := m.CompSlowdownAll(); err != nil {
			t.Error(err)
		}
		// Release the FIRST one: index bookkeeping must survive.
		if err := r1.Release(); err != nil {
			t.Error(err)
		}
		want2, err := core.CommSlowdown(m.Contenders(""), testTables())
		if err != nil {
			t.Error(err)
			return
		}
		if got := m.CommSlowdownAll(); math.Abs(got-want2) > 1e-12 {
			t.Errorf("after release: %v, want %v", got, want2)
		}
		if err := r2.Release(); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if m.CommSlowdownAll() != 1 {
		t.Fatalf("empty manager slowdown %v", m.CommSlowdownAll())
	}
}

func TestWorkingSetIntegration(t *testing.T) {
	k := des.New()
	host := cpu.NewHost(k, "sun", 1)
	if err := host.ConfigureMemory(cpu.MemoryConfig{Pages: 1000, Thrash: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := New(k, Config{Tables: testTables(), Host: host})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("a", func(p *des.Proc) {
		r1, err := m.Submit(p, AppDescriptor{Name: "one", WorkingSetPages: 800})
		if err != nil {
			t.Error(err)
			return
		}
		r2, err := m.Submit(p, AppDescriptor{Name: "two", WorkingSetPages: 700})
		if err != nil {
			t.Error(err)
			return
		}
		if host.ResidentPages() != 1500 {
			t.Errorf("resident %d, want 1500", host.ResidentPages())
		}
		if host.PagingFactor() <= 1 {
			t.Errorf("paging factor %v, want > 1 (oversubscribed)", host.PagingFactor())
		}
		ws := m.WorkingSets("one")
		if len(ws) != 1 || ws[0] != 700 {
			t.Errorf("WorkingSets(one) = %v", ws)
		}
		_ = r1.Release()
		_ = r2.Release()
		if host.ResidentPages() != 0 {
			t.Errorf("pages leaked: %d", host.ResidentPages())
		}
	})
	k.Run()
}

func TestNewRejectsBadTables(t *testing.T) {
	k := des.New()
	if _, err := New(k, Config{Tables: core.DelayTables{CompOnComm: []float64{-1}}}); err == nil {
		t.Fatal("invalid tables accepted")
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	k := des.New()
	mpp := mesh.MustNew(k, mesh.Config{Name: "p", Nodes: 16, NodeSpeed: 1, NXBeta: 1e6})
	m, err := New(k, Config{Tables: testTables(), MPP: mpp, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	// hog takes the whole machine; q1 parks; q2 must be rejected.
	k.Spawn("hog", func(p *des.Proc) {
		r, err := m.Submit(p, AppDescriptor{Name: "hog", Nodes: 16})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(10)
		r.Release()
	})
	k.Spawn("q1", func(p *des.Proc) {
		p.Delay(1)
		if _, err := m.Submit(p, AppDescriptor{Name: "q1", Nodes: 4}); err != nil {
			t.Errorf("q1: %v", err)
		}
	})
	rejectedAt := -1.0
	k.Spawn("q2", func(p *des.Proc) {
		p.Delay(2)
		_, err := m.Submit(p, AppDescriptor{Name: "q2", Nodes: 4})
		if !errors.Is(err, ErrQueueFull) {
			t.Errorf("q2: err = %v, want ErrQueueFull", err)
		}
		rejectedAt = p.Now()
	})
	k.Run()
	if rejectedAt != 2 {
		t.Fatalf("rejection at %v, want immediate (t=2)", rejectedAt)
	}
	if m.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", m.Rejected())
	}
}

func TestSubmitTimeoutExpiresQueuedRequest(t *testing.T) {
	k := des.New()
	mpp := mesh.MustNew(k, mesh.Config{Name: "p", Nodes: 16, NodeSpeed: 1, NXBeta: 1e6})
	m, err := New(k, Config{Tables: testTables(), MPP: mpp, SubmitTimeout: 3})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("hog", func(p *des.Proc) {
		r, err := m.Submit(p, AppDescriptor{Name: "hog", Nodes: 16})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(100)
		r.Release()
	})
	timedOutAt := -1.0
	k.Spawn("q", func(p *des.Proc) {
		p.Delay(1)
		_, err := m.Submit(p, AppDescriptor{Name: "q", Nodes: 4})
		if !errors.Is(err, ErrSubmitTimeout) {
			t.Errorf("err = %v, want ErrSubmitTimeout", err)
		}
		timedOutAt = p.Now()
	})
	k.Run()
	if timedOutAt != 4 {
		t.Fatalf("timed out at %v, want 4 (enqueued 1 + timeout 3)", timedOutAt)
	}
	if m.Queued() != 0 {
		t.Fatalf("Queued = %d after expiry", m.Queued())
	}
	if m.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", m.Rejected())
	}
}

func TestSubmitTimeoutNotFiredOnGrant(t *testing.T) {
	// The partition frees before the timeout: the request is granted
	// and the expiry timer must not fire later.
	k := des.New()
	mpp := mesh.MustNew(k, mesh.Config{Name: "p", Nodes: 16, NodeSpeed: 1, NXBeta: 1e6})
	m, err := New(k, Config{Tables: testTables(), MPP: mpp, SubmitTimeout: 5})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("hog", func(p *des.Proc) {
		r, err := m.Submit(p, AppDescriptor{Name: "hog", Nodes: 16})
		if err != nil {
			t.Error(err)
			return
		}
		p.Delay(2)
		r.Release()
	})
	grantedAt := -1.0
	k.Spawn("q", func(p *des.Proc) {
		p.Delay(1)
		r, err := m.Submit(p, AppDescriptor{Name: "q", Nodes: 4})
		if err != nil {
			t.Errorf("granted submit errored: %v", err)
			return
		}
		grantedAt = p.Now()
		p.Delay(10) // outlive the timeout horizon
		r.Release()
	})
	k.Run()
	if grantedAt != 2 {
		t.Fatalf("granted at %v, want 2", grantedAt)
	}
	if m.Rejected() != 0 {
		t.Fatalf("Rejected = %d, want 0", m.Rejected())
	}
}

func TestHealthSurfacesTrustState(t *testing.T) {
	k := des.New()
	// Without a tracker the manager trusts its calibration unconditionally.
	m, _ := newManager(t, k, false)
	if state, reason := m.Health(); state != caltrust.Fresh || reason != "" {
		t.Fatalf("trackerless Health() = %v %q, want fresh", state, reason)
	}

	cal := core.Calibration{
		ToBack: core.Uniform(1e-3, 2.5e5),
		ToHost: core.Uniform(1.2e-3, 3e5),
		Tables: testTables(),
	}
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	mpp := mesh.MustNew(k, mesh.Config{Name: "p2", Nodes: 16, NodeSpeed: 1, NXBeta: 1e6})
	mt, err := New(k, Config{Tables: testTables(), MPP: mpp, Trust: tr})
	if err != nil {
		t.Fatal(err)
	}
	if state, _ := mt.Health(); state != caltrust.Fresh {
		t.Fatalf("initial Health() = %v, want fresh", state)
	}
	// A clean baseline, then sustained under-prediction, drives the
	// tracker stale; the manager surfaces it.
	for i := 0; i < 5; i++ {
		if _, err := tr.Observe(1.0, 1.01); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := tr.Observe(1.0, 1.9); err != nil {
			t.Fatal(err)
		}
	}
	state, reason := mt.Health()
	if state != caltrust.Stale {
		t.Fatalf("post-drift Health() = %v, want stale", state)
	}
	if reason == "" {
		t.Fatal("stale Health() carries no reason")
	}
}
