package runner

import (
	"time"

	"contention/internal/obs"
)

// Pool telemetry. The pool has no wait queue — a task that cannot get a
// token runs inline on the submitting goroutine — so "queue depth" is
// expressed as the inline/async split: inline tasks are exactly the
// ones that would have queued on a blocking pool. Utilization in the
// run manifest is async/total.
var (
	mTasks = obs.NewCounter(obs.MetricPoolTasks,
		"tasks executed through the pool, inline and async")
	mInline = obs.NewCounter(obs.MetricPoolInline,
		"tasks that ran inline on the submitter (serial pool or no token free)")
	mAsync = obs.NewCounter(obs.MetricPoolAsync,
		"tasks that ran on a pool worker goroutine")
	mInFlight = obs.NewGauge(obs.MetricPoolInFlight,
		"tasks currently executing")
	mMaxInFlight = obs.NewGauge(obs.MetricPoolMaxInFlight,
		"high-water mark of concurrently executing tasks")
	mTaskSeconds = obs.NewHistogram(obs.MetricPoolTaskSeconds,
		"per-task wall time in seconds", obs.DefaultSecondsBuckets())
)

// runTask executes task with telemetry. With telemetry disabled this is
// a direct call — no clock reads, no atomics beyond one flag load.
func runTask(task func(), async bool) {
	if !obs.Enabled() {
		task()
		return
	}
	mTasks.Inc()
	if async {
		mAsync.Inc()
	} else {
		mInline.Inc()
	}
	mInFlight.Add(1)
	mMaxInFlight.SetMax(mInFlight.Value())
	start := time.Now()
	task()
	mTaskSeconds.Observe(time.Since(start).Seconds())
	mInFlight.Add(-1)
}
