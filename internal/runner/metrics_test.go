package runner

import (
	"context"
	"testing"

	"contention/internal/obs"
)

// TestPoolMetricsMove checks the pool's task accounting with telemetry
// on: every Map item is counted exactly once, a parallel pool records
// at least one async execution, the in-flight gauge settles back to its
// starting level, and the task-duration histogram sees every task.
func TestPoolMetricsMove(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	const n = 16
	t0, a0, h0 := mTasks.Value(), mAsync.Value(), mTaskSeconds.Count()
	inflight0 := mInFlight.Value()
	_, err := Map(context.Background(), New(2), make([]struct{}, n),
		func(context.Context, int, struct{}) (struct{}, error) {
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if d := mTasks.Value() - t0; d != n {
		t.Fatalf("task counter moved by %d, want %d", d, n)
	}
	if d := mAsync.Value() - a0; d < 1 {
		t.Fatalf("async counter moved by %d on a 2-worker pool, want ≥ 1", d)
	}
	if d := mTaskSeconds.Count() - h0; d != n {
		t.Fatalf("task-seconds histogram count moved by %d, want %d", d, n)
	}
	if got := mInFlight.Value(); got != inflight0 {
		t.Fatalf("in-flight gauge = %v after completion, want %v", got, inflight0)
	}
	if mMaxInFlight.Value() < 1 {
		t.Fatalf("max in-flight high-water = %v, want ≥ 1", mMaxInFlight.Value())
	}
}

// TestSerialPoolCountsInline checks that a serial pool's tasks are all
// accounted as inline: the serial loop is the degenerate "no token
// free" case of the pool.
func TestSerialPoolCountsInline(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	const n = 8
	t0, i0, a0 := mTasks.Value(), mInline.Value(), mAsync.Value()
	_, err := Map(context.Background(), Serial(), make([]struct{}, n),
		func(context.Context, int, struct{}) (struct{}, error) {
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if d := mTasks.Value() - t0; d != n {
		t.Fatalf("task counter moved by %d, want %d", d, n)
	}
	if d := mInline.Value() - i0; d != n {
		t.Fatalf("inline counter moved by %d, want %d", d, n)
	}
	if d := mAsync.Value() - a0; d != 0 {
		t.Fatalf("async counter moved by %d on a serial pool, want 0", d)
	}
}
