// Package runner is the bounded parallel-execution engine behind the
// experiment suite. It fans work items out over a fixed-size worker
// pool while guaranteeing deterministic, in-order results: Map returns
// results indexed exactly like its input, and the error it reports is
// always the lowest-index error, independent of goroutine scheduling.
// Combined with experiment drivers whose per-point simulations are
// self-contained (fresh DES kernel, locally seeded RNGs), this makes
// the parallel path byte-identical to the serial one.
//
// The pool bounds *additional* concurrency with a token bucket: a task
// that cannot get a token runs inline on the submitting goroutine
// instead of waiting. That keeps nested Map calls (drivers fanned out
// by the suite, sweep points fanned out by each driver) deadlock-free
// while the total number of running tasks stays within workers + the
// number of callers.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds how many tasks may execute concurrently. The zero value
// and nil are both valid and mean "serial": Map degenerates to a plain
// loop. Pools are goroutine-safe and intended to be shared, so that
// nested fan-outs draw from one budget.
type Pool struct {
	workers int
	tokens  chan struct{}
}

// New returns a pool allowing up to workers concurrent tasks.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers)}
}

// Serial returns a pool that runs everything inline, in input order.
func Serial() *Pool { return nil }

// Workers reports the concurrency bound (1 for a serial pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// serial reports whether the pool degenerates to a plain loop.
func (p *Pool) serial() bool { return p.Workers() == 1 }

// submit runs task on a pool goroutine when a token is free, inline
// otherwise, and reports completion through wg.
func (p *Pool) submit(wg *sync.WaitGroup, task func()) {
	select {
	case p.tokens <- struct{}{}:
		wg.Add(1)
		go func() {
			defer func() {
				<-p.tokens
				wg.Done()
			}()
			runTask(task, true)
		}()
	default:
		runTask(task, false)
	}
}

// indexedErr pairs an error with the input index it occurred at, so the
// parallel path can report the same error the serial path would have
// hit first.
type indexedErr struct {
	index int
	err   error
}

// Map applies fn to every item and returns the results in input order.
// fn receives the item's index and value. On a serial pool it is a
// plain loop that stops at the first error. On a parallel pool all
// items are attempted (work already in flight is not interrupted, but
// ctx is cancelled as soon as any item fails, so cooperative fns can
// bail early) and the error returned is the one with the lowest input
// index — deterministic regardless of scheduling.
func Map[In, Out any](ctx context.Context, p *Pool, items []In, fn func(ctx context.Context, index int, item In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(items))
	if p.serial() {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var v Out
			var err error
			runTask(func() { v, err = fn(ctx, i, it) }, false)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first *indexedErr
	)
	record := func(i int, err error) {
		mu.Lock()
		if first == nil || i < first.index {
			first = &indexedErr{index: i, err: err}
		}
		mu.Unlock()
		cancel()
	}
	for i, it := range items {
		i, it := i, it
		p.submit(&wg, func() {
			if err := ctx.Err(); err != nil {
				record(i, err)
				return
			}
			v, err := fn(ctx, i, it)
			if err != nil {
				record(i, err)
				return
			}
			out[i] = v
		})
	}
	wg.Wait()
	if first != nil {
		return nil, first.err
	}
	return out, nil
}

// Run is Map for index-only tasks with no results.
func Run(ctx context.Context, p *Pool, n int, fn func(ctx context.Context, index int) error) error {
	idx := make([]struct{}, n)
	_, err := Map(ctx, p, idx, func(ctx context.Context, i int, _ struct{}) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
