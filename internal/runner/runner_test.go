package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapSerialNilPool(t *testing.T) {
	out, err := Map(context.Background(), Serial(), []int{1, 2, 3},
		func(_ context.Context, i, v int) (int, error) { return v * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[10 20 30]" {
		t.Fatalf("serial map = %v", out)
	}
}

func TestMapParallelOrderDeterministic(t *testing.T) {
	p := New(8)
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), p, items,
		func(_ context.Context, i, v int) (int, error) {
			if i != v {
				t.Errorf("index %d got item %d", i, v)
			}
			// Vary completion order.
			time.Sleep(time.Duration(v%5) * time.Microsecond)
			return v * v, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapLowestIndexError: whichever goroutine fails first, the error
// reported is the one the serial loop would have hit — the lowest index.
func TestMapLowestIndexError(t *testing.T) {
	errLo := errors.New("low")
	errHi := errors.New("high")
	for trial := 0; trial < 50; trial++ {
		_, err := Map(context.Background(), New(4), []int{0, 1, 2, 3, 4, 5, 6, 7},
			func(_ context.Context, i, v int) (int, error) {
				switch v {
				case 6:
					// The high-index failure lands first...
					return 0, errHi
				case 2:
					// ...the low-index one after a delay.
					time.Sleep(200 * time.Microsecond)
					return 0, errLo
				}
				time.Sleep(50 * time.Microsecond)
				return v, nil
			})
		if !errors.Is(err, errLo) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errLo)
		}
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls int32
	_, err := Map(context.Background(), Serial(), []int{0, 1, 2, 3},
		func(_ context.Context, i, v int) (int, error) {
			atomic.AddInt32(&calls, 1)
			if v == 1 {
				return 0, boom
			}
			return v, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("serial map made %d calls after error, want 2", calls)
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, New(2), []int{1, 2, 3},
		func(ctx context.Context, i, v int) (int, error) { return v, ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMapNestedNoDeadlock: drivers fanned out by the suite each fan out
// their own sweeps on the same pool. The token bucket must never
// deadlock, whatever the nesting.
func TestMapNestedNoDeadlock(t *testing.T) {
	p := New(2)
	outer := make([]int, 16)
	for i := range outer {
		outer[i] = i
	}
	sums, err := Map(context.Background(), p, outer,
		func(ctx context.Context, _, o int) (int, error) {
			inner := make([]int, 16)
			for i := range inner {
				inner[i] = i
			}
			vs, err := Map(ctx, p, inner,
				func(_ context.Context, _, v int) (int, error) { return o*100 + v, nil })
			if err != nil {
				return 0, err
			}
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return sum, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for o, got := range sums {
		want := o*100*16 + 120
		if got != want {
			t.Fatalf("outer %d: sum %d, want %d", o, got, want)
		}
	}
}

// TestMapBoundedConcurrency: no more tasks run at once than workers
// plus the single submitting goroutine (the inline-fallback bound).
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var running, peak int32
	items := make([]int, 64)
	_, err := Map(context.Background(), New(workers), items,
		func(_ context.Context, i, _ int) (int, error) {
			n := atomic.AddInt32(&running, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			atomic.AddInt32(&running, -1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers+1 {
		t.Fatalf("peak concurrency %d, want <= %d", peak, workers+1)
	}
}

func TestRun(t *testing.T) {
	var sum int32
	if err := Run(context.Background(), New(4), 10, func(_ context.Context, i int) error {
		atomic.AddInt32(&sum, int32(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestWorkers(t *testing.T) {
	if got := Serial().Workers(); got != 1 {
		t.Fatalf("Serial().Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d", got)
	}
}
