package scenario

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// fuzzSeedTrace builds one small valid served trace for seeding.
func fuzzSeedTrace(format string) []byte {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, TraceHeader{Seed: 3, Scenario: "steady", Format: format, Served: true})
	if err != nil {
		panic(err)
	}
	recs := testRecords()
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			panic(err)
		}
	}
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadTraceHeader drives the header parser (and the record loop
// behind it) with arbitrary bytes: truncated, bit-flipped,
// wrong-version, and checksum-broken traces must yield typed errors —
// never a panic, never an over-read, never an unbounded allocation.
func FuzzReadTraceHeader(f *testing.F) {
	valid := fuzzSeedTrace(FormatJSON)
	f.Add(valid)
	f.Add(valid[:6])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("CTRC"))
	f.Add([]byte{})
	wrongSchema := bytes.Replace(append([]byte(nil), valid...), []byte("/v1"), []byte("/v7"), 1)
	f.Add(wrongSchema)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			requireTyped(t, err)
			return
		}
		for i := 0; i < 1<<12; i++ {
			_, err := tr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				requireTyped(t, err)
				return
			}
		}
	})
}

// FuzzDecodeTraceRecord drives the record-frame decoder directly with
// arbitrary frame bodies: any input either round-trips through
// marshalRecord to the identical bytes or fails with ErrTraceCorrupt.
func FuzzDecodeTraceRecord(f *testing.F) {
	for _, rec := range testRecords() {
		rec := rec
		f.Add(marshalRecord(nil, &rec))
	}
	f.Add([]byte{})
	f.Add(make([]byte, 9))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, frame []byte) {
		rec, err := unmarshalRecord(frame)
		if err != nil {
			if !errors.Is(err, ErrTraceCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A frame the decoder accepts must re-encode to the same bytes:
		// the format has no redundant encodings, so decode∘encode is the
		// identity on valid frames.
		if out := marshalRecord(nil, &rec); !bytes.Equal(out, frame) {
			t.Fatalf("decode/encode not idempotent:\n in  %x\n out %x", frame, out)
		}
	})
}

// requireTyped asserts a reader error belongs to the trace taxonomy.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	for _, sentinel := range []error{ErrTraceMagic, ErrTraceSchema, ErrTraceChecksum, ErrTraceCorrupt} {
		if errors.Is(err, sentinel) {
			return
		}
	}
	t.Fatalf("untyped trace error: %v", err)
}

// TestFuzzSeedsPass runs the fuzz corpora once as plain tests, so the
// properties hold even where `go test -fuzz` never runs.
func TestFuzzSeedsPass(t *testing.T) {
	for _, format := range []string{FormatJSON, FormatBinary} {
		raw := fuzzSeedTrace(format)
		if _, recs, err := ReadTrace(bytes.NewReader(raw)); err != nil || len(recs) == 0 {
			t.Fatalf("%s seed trace unreadable: %v", format, err)
		}
		// Truncation only reads cleanly at an exact record boundary (the
		// stream just looks shorter); anywhere else it must fail typed.
		boundaries := map[int]bool{}
		{
			var buf bytes.Buffer
			tw, err := NewTraceWriter(&buf, TraceHeader{Seed: 3, Scenario: "steady", Format: format, Served: true})
			if err != nil {
				t.Fatal(err)
			}
			_ = tw.Flush()
			boundaries[buf.Len()] = true
			recs := testRecords()
			for i := range recs {
				_ = tw.Write(&recs[i])
				_ = tw.Flush()
				boundaries[buf.Len()] = true
			}
		}
		for cut := 0; cut < len(raw); cut += 7 {
			_, _, err := ReadTrace(bytes.NewReader(raw[:cut]))
			if err == nil {
				if !boundaries[cut] {
					t.Fatalf("%s: truncation at %d (not a record boundary) read cleanly", format, cut)
				}
				continue
			}
			requireTyped(t, err)
		}
		// Every bit-flip in the stream must fail typed or change nothing
		// semantically visible (flips inside reason/cohort bytes still land
		// on the checksum, so in practice: fail typed).
		for pos := 0; pos < len(raw); pos += 11 {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0x10
			if _, _, err := ReadTrace(bytes.NewReader(mut)); err != nil {
				requireTyped(t, err)
			}
		}
	}
	// An absurd offset is rejected even with a valid checksum.
	frame := marshalRecord(nil, &Record{Offset: time.Duration(1<<62 - 1), Cohort: "x"})
	frame[7] |= 0x80 // push the offset past the 1<<62 cap
	if _, err := unmarshalRecord(frame); !errors.Is(err, ErrTraceCorrupt) {
		t.Fatalf("absurd offset accepted: %v", err)
	}
}
