package scenario

import "contention/internal/obs"

// Scenario telemetry. Arrival counts are labelled by cohort so the run
// manifest can show which population generated the load; the trace and
// replay counters feed the scenario manifest section.
var (
	mArrivals = obs.NewCounterVec(obs.MetricScenarioArrivals,
		"scheduled arrivals generated, by cohort", "cohort")
	mTraceWrites = obs.NewCounter(obs.MetricScenarioTraceWrites,
		"trace records written")
	mTraceReads = obs.NewCounter(obs.MetricScenarioTraceReads,
		"trace records read back")
	mReplayDiffs = obs.NewCounter(obs.MetricScenarioReplayDiffs,
		"replayed responses that differed from the recorded ones")
)

// CountReplayMismatch tallies one replayed response that failed to
// reproduce its recorded value or status. Exposed so the loadgen and
// experiments replay drivers share one series.
func CountReplayMismatch() { mReplayDiffs.Inc() }
