package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"contention/internal/cluster"
	"contention/internal/core"
	"contention/internal/runner"
	"contention/internal/serve"
)

// replayScenario is the differential workload: three cohorts with
// different mixes so the batcher sees skewed, repeating keys.
func replayScenario(t testing.TB, rate float64) *Scenario {
	t.Helper()
	sc := Mix("replay",
		Cohort{Name: "batch", Arrivals: Constant{Rate: rate * 0.4},
			Workload: Workload{Comm: 0.2, J: 0.3, Mixes: 4}},
		Cohort{Name: "interactive", Arrivals: Sinusoid{Mean: rate * 0.4,
			Terms: []Term{{Amp: 0.5, Period: 700 * time.Millisecond}}},
			Workload: Workload{Comm: 0.8, Mixes: 12}},
		Cohort{Name: "crowd", Arrivals: MarkovBurst{Base: rate * 0.05, Burst: rate,
			MeanOn: 150 * time.Millisecond, MeanOff: 450 * time.Millisecond},
			Workload: Workload{Homogeneous: 1, Mixes: 2, MaxP: 3}},
	)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	return sc
}

// postBody sends one wire body and decodes the outcome; 4xx/5xx record
// only the status.
func postBody(t testing.TB, client *http.Client, url, contentType string, body []byte, binary bool) (int, serve.Response) {
	t.Helper()
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, serve.Response{}
	}
	if binary {
		out, err := serve.DecodeBinaryResponse(raw)
		if err != nil {
			t.Fatalf("binary response: %v", err)
		}
		return resp.StatusCode, out
	}
	var out serve.Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("json response %q: %v", raw, err)
	}
	return resp.StatusCode, out
}

// serveConcurrent answers bodies[i] into outs[i] with a bounded worker
// pool, preserving index order in the results.
func serveConcurrent(t testing.TB, client *http.Client, url, contentType string, bodies [][]byte, binary bool, conc int) ([]int, []serve.Response) {
	t.Helper()
	statuses := make([]int, len(bodies))
	outs := make([]serve.Response, len(bodies))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				statuses[i], outs[i] = postBody(t, client, url, contentType, bodies[i], binary)
			}
		}()
	}
	for i := range bodies {
		next <- i
	}
	close(next)
	wg.Wait()
	return statuses, outs
}

// TestReplayDifferential10k is the tentpole acceptance gate: record a
// 10k-request seeded run against an in-process server, replay the
// trace against a fresh server, and require every response value
// bit-for-bit identical and every status code exactly equal. Five
// malformed bodies are spliced in so the 400 path is part of the
// differential.
func TestReplayDifferential10k(t *testing.T) {
	const want = 10_000
	n := want
	if testing.Short() {
		n = 2_000
	}
	// ~3.5k req/s over 3 s lands comfortably past 10k; truncate exactly.
	sc := replayScenario(t, 3500)
	items, err := sc.Schedule(20260807, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) < n {
		t.Fatalf("schedule produced %d items, need %d", len(items), n)
	}
	items = items[:n]

	bodies := make([][]byte, 0, n+5)
	cohorts := make([]string, 0, n+5)
	offsets := make([]time.Duration, 0, n+5)
	for i, it := range items {
		// Splice malformed bodies at fixed points: the recorded 400s must
		// replay as 400s.
		if i%2000 == 1000 {
			bodies = append(bodies, []byte{0xde, 0xad, 0xbe, 0xef})
			cohorts = append(cohorts, "bad")
			offsets = append(offsets, it.Offset)
		}
		b, err := EncodeItem(it, FormatBinary)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
		cohorts = append(cohorts, it.Cohort)
		offsets = append(offsets, it.Offset)
	}

	newServer := func() *httptest.Server {
		pred, err := core.NewPredictor(serve.SyntheticCalibration())
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(serve.Config{Pred: pred, Pool: runner.New(0), Window: 200 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		return ts
	}

	// Record.
	rec := newServer()
	statuses, outs := serveConcurrent(t, rec.Client(), rec.URL+"/v1/predict",
		serve.ContentTypeBinary, bodies, true, 16)

	var trace bytes.Buffer
	tw, err := NewTraceWriter(&trace, TraceHeader{
		Seed: 20260807, Scenario: sc.Spec(), HorizonMS: 3000, Format: FormatBinary, Served: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bodies {
		if err := tw.Write(&Record{
			Offset: offsets[i], Cohort: cohorts[i], Req: bodies[i],
			HasResp: true, Status: statuses[i], Resp: outs[i],
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay against a fresh server and hold the differential.
	hdr, recs, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Served || hdr.Format != FormatBinary {
		t.Fatalf("header %+v lost served/format", hdr)
	}
	rep := newServer()
	replayBodies := make([][]byte, len(recs))
	for i := range recs {
		replayBodies[i] = recs[i].Req
	}
	gotStatus, gotOut := serveConcurrent(t, rep.Client(), rep.URL+"/v1/predict",
		serve.ContentTypeBinary, replayBodies, true, 16)

	badSeen, mismatches := 0, 0
	for i, r := range recs {
		if gotStatus[i] != r.Status {
			mismatches++
			t.Errorf("record %d (%s): replay status %d, recorded %d", i, r.Cohort, gotStatus[i], r.Status)
			continue
		}
		if r.Status != http.StatusOK {
			badSeen++
			continue
		}
		if math.Float64bits(gotOut[i].Value) != math.Float64bits(r.Resp.Value) ||
			gotOut[i].Degraded != r.Resp.Degraded || gotOut[i].Fast != r.Resp.Fast {
			mismatches++
			t.Errorf("record %d (%s): replay value %x degraded=%v, recorded %x degraded=%v",
				i, r.Cohort, math.Float64bits(gotOut[i].Value), gotOut[i].Degraded,
				math.Float64bits(r.Resp.Value), r.Resp.Degraded)
		}
		if mismatches > 10 {
			t.Fatalf("giving up after %d mismatches", mismatches)
		}
	}
	if badSeen == 0 {
		t.Fatal("no malformed records exercised the 400 path")
	}
	if len(recs) != len(bodies) {
		t.Fatalf("trace carried %d records, wrote %d", len(recs), len(bodies))
	}
	t.Logf("replayed %d records (%d bad-request) bit-identically", len(recs), badSeen)
}

// TestReplayThroughCluster is the race-checked variant: the same
// record→replay differential, but the traffic crosses the cluster
// router (2 in-process replicas, consistent-hash affinity, JSON wire).
func TestReplayThroughCluster(t *testing.T) {
	n := 1500
	if testing.Short() {
		n = 400
	}
	sc := replayScenario(t, 2000)
	items, err := sc.Schedule(7, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) < n {
		t.Fatalf("schedule produced %d items, need %d", len(items), n)
	}
	items = items[:n]
	bodies := make([][]byte, n)
	for i, it := range items {
		if bodies[i], err = EncodeItem(it, FormatJSON); err != nil {
			t.Fatal(err)
		}
	}

	newCluster := func() *httptest.Server {
		c, err := cluster.New(cluster.Config{
			Replicas: 2,
			Factory:  cluster.InProcessFactory(cluster.InProcConfig{Window: 200 * time.Microsecond}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(c.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = c.Shutdown(ctx)
		})
		return ts
	}

	rec := newCluster()
	statuses, outs := serveConcurrent(t, rec.Client(), rec.URL+"/v1/predict",
		"application/json", bodies, false, 8)

	var trace bytes.Buffer
	tw, err := NewTraceWriter(&trace, TraceHeader{Seed: 7, Scenario: sc.Spec(), Format: FormatJSON, Served: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bodies {
		if err := tw.Write(&Record{
			Offset: items[i].Offset, Cohort: items[i].Cohort, Req: bodies[i],
			HasResp: true, Status: statuses[i], Resp: outs[i],
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	_, recs, err := ReadTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := newCluster()
	replayBodies := make([][]byte, len(recs))
	for i := range recs {
		replayBodies[i] = recs[i].Req
	}
	gotStatus, gotOut := serveConcurrent(t, rep.Client(), rep.URL+"/v1/predict",
		"application/json", replayBodies, false, 8)

	for i, r := range recs {
		if gotStatus[i] != r.Status {
			t.Fatalf("record %d (%s): replay status %d, recorded %d", i, r.Cohort, gotStatus[i], r.Status)
		}
		if r.Status != http.StatusOK {
			continue
		}
		if math.Float64bits(gotOut[i].Value) != math.Float64bits(r.Resp.Value) {
			t.Fatalf("record %d (%s): replay value %x, recorded %x",
				i, r.Cohort, math.Float64bits(gotOut[i].Value), math.Float64bits(r.Resp.Value))
		}
	}
}
