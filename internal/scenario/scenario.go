// Package scenario generates production-shaped prediction traffic: a
// composable set of seeded arrival-process generators (constant-rate
// Poisson, multi-period sinusoid, Markov-modulated on/off bursts, and
// flash-crowd ramps) combined per cohort with a contender-multiset
// workload distribution, yielding one deterministic schedule of
// timestamped requests from a seed.
//
// The contention effects the model exists to capture show up under
// structured load — diurnal cycles, bursts, flash crowds — in ways
// uniform closed/open-loop traffic never exercises: idle waves and
// bursts propagate through contended resources (Afzal et al., see
// PAPERS.md), and the batcher/surface hot paths behave very differently
// under cohort-skewed key distributions than under uniform draws.
//
// Determinism contract: Schedule(seed, horizon) is a pure function of
// (scenario definition, seed, horizon) — bit-identical across runs,
// GOMAXPROCS settings, and hosts. Every random draw comes from
// per-cohort rand.Rand streams derived from the seed and the cohort
// name, consumed in one fixed sequential order; nothing reads the wall
// clock or global rand state. That contract is what makes the trace
// record/replay differential (trace.go) a byte-level gate.
package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"contention/internal/serve"
)

// Arrivals is one arrival-process generator: a realization is the
// ascending list of arrival offsets (seconds from run start) over a
// horizon, drawn deterministically from the supplied rng. The interface
// is package-sealed (validate is unexported); compose new processes out
// of the provided generators and the Cohort/Scenario combinators.
type Arrivals interface {
	// Times appends one realization's arrival offsets, in ascending
	// order within [0, horizon), to dst.
	Times(rng *rand.Rand, horizon float64, dst []float64) []float64
	// Spec renders the canonical spec-string form (see Parse).
	Spec() string
	validate() error
}

// poissonThin draws an inhomogeneous Poisson process by thinning: a
// homogeneous candidate stream at maxRate, each candidate kept with
// probability rate(t)/maxRate. Exact for any rate function bounded by
// maxRate, and deterministic in the rng draw order.
func poissonThin(rng *rand.Rand, horizon, maxRate float64, rate func(t float64) float64, dst []float64) []float64 {
	if maxRate <= 0 {
		return dst
	}
	for t := rng.ExpFloat64() / maxRate; t < horizon; t += rng.ExpFloat64() / maxRate {
		if rng.Float64()*maxRate <= rate(t) {
			dst = append(dst, t)
		}
	}
	return dst
}

// --- constant ---------------------------------------------------------------

// Constant is a homogeneous Poisson process at Rate req/s — the
// steady-state baseline every other generator perturbs.
type Constant struct {
	Rate float64
}

func (c Constant) validate() error {
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("scenario: constant rate %v must be positive and finite", c.Rate)
	}
	return nil
}

// Times draws exponential inter-arrival gaps at Rate.
func (c Constant) Times(rng *rand.Rand, horizon float64, dst []float64) []float64 {
	for t := rng.ExpFloat64() / c.Rate; t < horizon; t += rng.ExpFloat64() / c.Rate {
		dst = append(dst, t)
	}
	return dst
}

// Spec implements Arrivals.
func (c Constant) Spec() string { return fmt.Sprintf("constant(rate=%g)", c.Rate) }

// --- sinusoid ---------------------------------------------------------------

// Term is one harmonic of a Sinusoid: rate is modulated by
// Amp·sin(2πt/Period + Phase), with Amp relative to the mean.
type Term struct {
	Amp    float64       // relative amplitude in [0, 1]
	Period time.Duration // cycle length
	Phase  float64       // radians
}

// Sinusoid is an inhomogeneous Poisson process whose rate is a
// multi-period sinusoid around Mean:
//
//	rate(t) = Mean · (1 + Σᵢ Ampᵢ·sin(2πt/Periodᵢ + Phaseᵢ))
//
// The amplitude sum is capped at 1 so the rate never clips at zero and
// the realized arrival count integrates to Mean·horizon — the diurnal
// (plus lunch-dip, plus weekly) shape of real service traffic.
type Sinusoid struct {
	Mean  float64
	Terms []Term
}

func (s Sinusoid) validate() error {
	if !(s.Mean > 0) || math.IsInf(s.Mean, 0) {
		return fmt.Errorf("scenario: sinusoid mean %v must be positive and finite", s.Mean)
	}
	if len(s.Terms) == 0 {
		return errors.New("scenario: sinusoid needs at least one term")
	}
	sum := 0.0
	for i, term := range s.Terms {
		if term.Amp < 0 || term.Amp > 1 || math.IsNaN(term.Amp) {
			return fmt.Errorf("scenario: sinusoid term %d amp %v outside [0,1]", i, term.Amp)
		}
		if term.Period <= 0 {
			return fmt.Errorf("scenario: sinusoid term %d period %v must be positive", i, term.Period)
		}
		if math.IsNaN(term.Phase) || math.IsInf(term.Phase, 0) {
			return fmt.Errorf("scenario: sinusoid term %d phase %v must be finite", i, term.Phase)
		}
		sum += term.Amp
	}
	if sum > 1 {
		return fmt.Errorf("scenario: sinusoid amplitude sum %.3g exceeds 1 (rate would clip at zero)", sum)
	}
	return nil
}

// RateAt reports the instantaneous rate at offset t seconds.
func (s Sinusoid) RateAt(t float64) float64 {
	r := 1.0
	for _, term := range s.Terms {
		r += term.Amp * math.Sin(2*math.Pi*t/term.Period.Seconds()+term.Phase)
	}
	return s.Mean * r
}

func (s Sinusoid) maxRate() float64 {
	sum := 1.0
	for _, term := range s.Terms {
		sum += term.Amp
	}
	return s.Mean * sum
}

// Times implements Arrivals by thinning against the amplitude envelope.
func (s Sinusoid) Times(rng *rand.Rand, horizon float64, dst []float64) []float64 {
	return poissonThin(rng, horizon, s.maxRate(), s.RateAt, dst)
}

// Spec implements Arrivals.
func (s Sinusoid) Spec() string {
	out := fmt.Sprintf("sinusoid(mean=%g", s.Mean)
	for i, term := range s.Terms {
		n := suffix(i)
		out += fmt.Sprintf(",amp%s=%g,period%s=%s", n, term.Amp, n, term.Period)
		if term.Phase != 0 {
			out += fmt.Sprintf(",phase%s=%g", n, term.Phase)
		}
	}
	return out + ")"
}

func suffix(i int) string {
	if i == 0 {
		return ""
	}
	return fmt.Sprint(i + 1)
}

// --- markov-modulated bursts ------------------------------------------------

// MarkovBurst is a two-state Markov-modulated Poisson process: the
// generator alternates between an "off" state emitting at Base and an
// "on" state emitting at Burst, with exponentially distributed dwell
// times MeanOn/MeanOff. The initial state is drawn from the stationary
// distribution, so the duty cycle matches MeanOn/(MeanOn+MeanOff) from
// t=0 — no warm-up transient.
type MarkovBurst struct {
	Base, Burst     float64
	MeanOn, MeanOff time.Duration
}

func (m MarkovBurst) validate() error {
	if m.Base < 0 || math.IsNaN(m.Base) || math.IsInf(m.Base, 0) {
		return fmt.Errorf("scenario: burst base rate %v must be non-negative and finite", m.Base)
	}
	if !(m.Burst > m.Base) || math.IsInf(m.Burst, 0) {
		return fmt.Errorf("scenario: burst rate %v must exceed base rate %v", m.Burst, m.Base)
	}
	if m.MeanOn <= 0 || m.MeanOff <= 0 {
		return fmt.Errorf("scenario: burst dwell times on=%v off=%v must be positive", m.MeanOn, m.MeanOff)
	}
	return nil
}

// DutyCycle is the stationary probability of the on (burst) state.
func (m MarkovBurst) DutyCycle() float64 {
	on, off := m.MeanOn.Seconds(), m.MeanOff.Seconds()
	return on / (on + off)
}

// MeanRate is the stationary mean arrival rate.
func (m MarkovBurst) MeanRate() float64 {
	d := m.DutyCycle()
	return d*m.Burst + (1-d)*m.Base
}

// Times walks the state chain: for each dwell segment, a homogeneous
// Poisson stream at the state's rate. One rng drives both the dwell
// sequence and the within-segment arrivals, in segment order.
func (m MarkovBurst) Times(rng *rand.Rand, horizon float64, dst []float64) []float64 {
	on := rng.Float64() < m.DutyCycle()
	for t := 0.0; t < horizon; {
		mean, rate := m.MeanOff.Seconds(), m.Base
		if on {
			mean, rate = m.MeanOn.Seconds(), m.Burst
		}
		end := t + rng.ExpFloat64()*mean
		if end > horizon {
			end = horizon
		}
		if rate > 0 {
			for a := t + rng.ExpFloat64()/rate; a < end; a += rng.ExpFloat64() / rate {
				dst = append(dst, a)
			}
		}
		t, on = end, !on
	}
	return dst
}

// Spec implements Arrivals.
func (m MarkovBurst) Spec() string {
	return fmt.Sprintf("burst(base=%g,burst=%g,on=%s,off=%s)", m.Base, m.Burst, m.MeanOn, m.MeanOff)
}

// --- flash crowd ------------------------------------------------------------

// FlashCrowd models a viral spike: Base rate until Start, a linear ramp
// to Peak over Ramp (monotone by construction — the property the tests
// pin), Peak held for Hold, then a linear decay back to Base over
// Decay.
type FlashCrowd struct {
	Base, Peak float64
	Start      time.Duration
	Ramp       time.Duration
	Hold       time.Duration
	Decay      time.Duration
}

func (f FlashCrowd) validate() error {
	if f.Base < 0 || math.IsNaN(f.Base) || math.IsInf(f.Base, 0) {
		return fmt.Errorf("scenario: flash base rate %v must be non-negative and finite", f.Base)
	}
	if !(f.Peak > f.Base) || math.IsInf(f.Peak, 0) {
		return fmt.Errorf("scenario: flash peak %v must exceed base %v", f.Peak, f.Base)
	}
	if f.Start < 0 || f.Ramp <= 0 || f.Hold < 0 || f.Decay < 0 {
		return fmt.Errorf("scenario: flash start=%v ramp=%v hold=%v decay=%v must be non-negative (ramp positive)",
			f.Start, f.Ramp, f.Hold, f.Decay)
	}
	return nil
}

// RateAt reports the instantaneous rate at offset t seconds.
func (f FlashCrowd) RateAt(t float64) float64 {
	start, ramp := f.Start.Seconds(), f.Ramp.Seconds()
	hold, decay := f.Hold.Seconds(), f.Decay.Seconds()
	switch {
	case t < start:
		return f.Base
	case t < start+ramp:
		return f.Base + (f.Peak-f.Base)*(t-start)/ramp
	case t < start+ramp+hold:
		return f.Peak
	case decay > 0 && t < start+ramp+hold+decay:
		return f.Peak - (f.Peak-f.Base)*(t-start-ramp-hold)/decay
	default:
		return f.Base
	}
}

// Times implements Arrivals by thinning against the peak rate.
func (f FlashCrowd) Times(rng *rand.Rand, horizon float64, dst []float64) []float64 {
	return poissonThin(rng, horizon, f.Peak, f.RateAt, dst)
}

// Spec implements Arrivals.
func (f FlashCrowd) Spec() string {
	return fmt.Sprintf("flash(base=%g,peak=%g,start=%s,ramp=%s,hold=%s,decay=%s)",
		f.Base, f.Peak, f.Start, f.Ramp, f.Hold, f.Decay)
}

// --- workload ---------------------------------------------------------------

// Workload is one cohort's request distribution: a pool of contender
// multisets drawn once per schedule (so the cohort's traffic repeats
// batch keys, the shape micro-batching and affinity routing exist for)
// and per-request kind/direction/j draws.
type Workload struct {
	// Mixes is the contender-multiset pool size (default 8).
	Mixes int
	// MaxP bounds the contender count per mix (default 4).
	MaxP int
	// Homogeneous is the fraction of pool mixes built from one spec
	// replicated p times — the class the precomputed surface covers
	// (default 0.5).
	Homogeneous float64
	// Comm is the probability a request is a comm query (default 0.5);
	// the rest are comp queries.
	Comm float64
	// J is the probability a comp query pins an explicit delay column
	// (default 0).
	J float64
}

func (w Workload) withDefaults() Workload {
	if w.Mixes == 0 {
		w.Mixes = 8
	}
	if w.MaxP == 0 {
		w.MaxP = 4
	}
	if w.Homogeneous == 0 {
		w.Homogeneous = 0.5
	}
	if w.Comm == 0 {
		w.Comm = 0.5
	}
	return w
}

func (w Workload) validate() error {
	w = w.withDefaults()
	if w.Mixes < 1 || w.Mixes > 4096 {
		return fmt.Errorf("scenario: workload mixes %d outside [1,4096]", w.Mixes)
	}
	if w.MaxP < 0 || w.MaxP > serve.MaxContenders {
		return fmt.Errorf("scenario: workload maxp %d outside [0,%d]", w.MaxP, serve.MaxContenders)
	}
	for name, v := range map[string]float64{"homog": w.Homogeneous, "comm": w.Comm, "j": w.J} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("scenario: workload %s %v outside [0,1]", name, v)
		}
	}
	return nil
}

// Spec renders only the non-default keys, so default workloads print
// nothing and Parse round-trips.
func (w Workload) spec() string {
	d := Workload{}.withDefaults()
	w2 := w.withDefaults()
	out := ""
	if w2.Mixes != d.Mixes {
		out += fmt.Sprintf(",mixes=%d", w2.Mixes)
	}
	if w2.MaxP != d.MaxP {
		out += fmt.Sprintf(",maxp=%d", w2.MaxP)
	}
	if w2.Homogeneous != d.Homogeneous {
		out += fmt.Sprintf(",homog=%g", w2.Homogeneous)
	}
	if w2.Comm != d.Comm {
		out += fmt.Sprintf(",comm=%g", w2.Comm)
	}
	if w2.J != d.J {
		out += fmt.Sprintf(",j=%g", w2.J)
	}
	return out
}

// pool materializes the cohort's contender-multiset pool from rng.
func (w Workload) pool(rng *rand.Rand) [][]serve.ContenderSpec {
	w = w.withDefaults()
	mixes := make([][]serve.ContenderSpec, w.Mixes)
	nHomog := int(math.Round(float64(w.Mixes) * w.Homogeneous))
	draw := func() serve.ContenderSpec {
		return serve.ContenderSpec{
			CommFraction: math.Round(rng.Float64()*80) / 100,
			MsgWords:     rng.Intn(2000),
		}
	}
	for m := range mixes {
		p := rng.Intn(w.MaxP + 1)
		specs := make([]serve.ContenderSpec, p)
		if m < nHomog {
			one := draw()
			for i := range specs {
				specs[i] = one
			}
		} else {
			for i := range specs {
				specs[i] = draw()
			}
		}
		mixes[m] = specs
	}
	return mixes
}

// request draws one request over the pool.
func (w Workload) request(rng *rand.Rand, pool [][]serve.ContenderSpec) *serve.Request {
	w = w.withDefaults()
	req := &serve.Request{Contenders: pool[rng.Intn(len(pool))]}
	if rng.Float64() < w.Comm {
		req.Kind = "comm"
		req.Dir = "to_back"
		if rng.Intn(2) == 0 {
			req.Dir = "to_host"
		}
		req.Sets = []serve.DataSetSpec{{N: 1 + rng.Intn(100), Words: rng.Intn(4000)}}
		return req
	}
	req.Kind = "comp"
	d := 0.1 + rng.Float64()*10
	req.Dcomp = &d
	if rng.Float64() < w.J {
		j := rng.Intn(4)
		req.J = &j
	}
	return req
}

// --- cohorts and scenarios --------------------------------------------------

// Cohort is one traffic population: an arrival process plus the
// request distribution its arrivals draw from.
type Cohort struct {
	Name     string
	Arrivals Arrivals
	Workload Workload
}

// Scenario is a set of cohorts whose merged arrival streams form one
// deterministic schedule — the Mix combinator. A single-cohort scenario
// is just a plain generator with a workload attached.
type Scenario struct {
	Name    string
	Cohorts []Cohort
}

// Mix combines cohorts into one scenario.
func Mix(name string, cohorts ...Cohort) *Scenario {
	return &Scenario{Name: name, Cohorts: cohorts}
}

// Single wraps one arrival process and workload as a scenario.
func Single(name string, arr Arrivals, wl Workload) *Scenario {
	return Mix(name, Cohort{Name: name, Arrivals: arr, Workload: wl})
}

// Validate checks every cohort definition.
func (s *Scenario) Validate() error {
	if s == nil || len(s.Cohorts) == 0 {
		return errors.New("scenario: no cohorts")
	}
	seen := map[string]bool{}
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("scenario: cohort %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Arrivals == nil {
			return fmt.Errorf("scenario: cohort %q has no arrival process", c.Name)
		}
		if err := c.Arrivals.validate(); err != nil {
			return fmt.Errorf("cohort %q: %w", c.Name, err)
		}
		if err := c.Workload.validate(); err != nil {
			return fmt.Errorf("cohort %q: %w", c.Name, err)
		}
	}
	return nil
}

// Spec renders the scenario in the canonical spec-string grammar
// (cohorts joined with "+"); Parse(s.Spec()) reproduces the scenario.
func (s *Scenario) Spec() string {
	parts := make([]string, len(s.Cohorts))
	for i, c := range s.Cohorts {
		g := c.Arrivals.Spec()
		wl := c.Workload.spec()
		if wl != "" {
			g = g[:len(g)-1] + wl + ")"
		}
		parts[i] = c.Name + "=" + g
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "+"
		}
		out += p
	}
	return out
}

// Item is one scheduled request.
type Item struct {
	// Offset is the arrival time from run start.
	Offset time.Duration
	// Cohort names the emitting cohort.
	Cohort string
	// Req is the request to issue (valid by construction).
	Req *serve.Request
}

// cohortSeed derives a cohort's private rng seed from the scenario seed
// and the cohort name (FNV-1a over the name, mixed with the seed by a
// splitmix64 finalizer), so cohorts draw independent streams and adding
// a cohort never perturbs the others.
func cohortSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := uint64(seed) ^ h.Sum64()
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Schedule realizes the scenario: every cohort's arrival process and
// workload are drawn from a seed-derived private rng, and the merged
// stream is sorted by (offset, cohort, sequence). The result is
// bit-deterministic in (scenario, seed, horizon) and independent of
// GOMAXPROCS — generation is strictly sequential per cohort.
func (s *Scenario) Schedule(seed int64, horizon time.Duration) ([]Item, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("scenario: horizon %v must be positive", horizon)
	}
	var items []Item
	for _, c := range s.Cohorts {
		rng := rand.New(rand.NewSource(cohortSeed(seed, c.Name)))
		pool := c.Workload.pool(rng)
		times := c.Arrivals.Times(rng, horizon.Seconds(), nil)
		mArrivals.With(c.Name).Add(int64(len(times)))
		for _, t := range times {
			items = append(items, Item{
				Offset: time.Duration(t * float64(time.Second)),
				Cohort: c.Name,
				Req:    c.Workload.request(rng, pool),
			})
		}
	}
	// The per-cohort streams are already sorted; the merge key adds
	// cohort name and insertion order so equal offsets order stably.
	sort.SliceStable(items, func(i, j int) bool { return items[i].Offset < items[j].Offset })
	return items, nil
}

// EncodeItem renders the item's request in the given wire format
// ("json" or "binary") — the bytes a trace stores and a replay sends.
func EncodeItem(it Item, format string) ([]byte, error) {
	switch format {
	case FormatJSON:
		return marshalJSONRequest(it.Req)
	case FormatBinary:
		return serve.AppendBinaryRequest(nil, it.Req)
	default:
		return nil, fmt.Errorf("scenario: unknown wire format %q (want %q or %q)", format, FormatJSON, FormatBinary)
	}
}
