package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// countArrivals realizes one generator over horizon seconds.
func countArrivals(t *testing.T, arr Arrivals, seed int64, horizon float64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return arr.Times(rng, horizon, nil)
}

// TestConstantRate pins the constant generator's realized rate to its
// configured rate: over 5 seeds × 100 s at 400 req/s the pooled count
// has a relative sigma of ~0.07%, so ±1% is a >10-sigma band.
func TestConstantRate(t *testing.T) {
	const rate, horizon = 400.0, 100.0
	total := 0
	for seed := int64(1); seed <= 5; seed++ {
		total += len(countArrivals(t, Constant{Rate: rate}, seed, horizon))
	}
	want := rate * horizon * 5
	if rel := math.Abs(float64(total)-want) / want; rel > 0.01 {
		t.Fatalf("constant: realized %d arrivals, want %.0f ±1%% (off %.2f%%)", total, want, rel*100)
	}
}

// TestSinusoidIntegratesToMean is the satellite property: the
// multi-period sinusoid's arrival count integrates to Mean·horizon
// within 1% — the amplitude terms reshape the traffic but add none.
func TestSinusoidIntegratesToMean(t *testing.T) {
	const mean, horizon = 400.0, 100.0
	s := Sinusoid{Mean: mean, Terms: []Term{
		{Amp: 0.5, Period: 2 * time.Second},
		{Amp: 0.25, Period: 500 * time.Millisecond},
		{Amp: 0.1, Period: 10 * time.Second, Phase: 1.2},
	}}
	if err := s.validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for seed := int64(1); seed <= 5; seed++ {
		total += len(countArrivals(t, s, seed, horizon))
	}
	want := mean * horizon * 5
	if rel := math.Abs(float64(total)-want) / want; rel > 0.01 {
		t.Fatalf("sinusoid: realized %d arrivals, want %.0f ±1%% (off %.2f%%)", total, want, rel*100)
	}
	// The modulation itself must be present: the peak-quarter of the
	// dominant 2 s cycle must out-arrive the trough-quarter decisively.
	times := countArrivals(t, s, 7, horizon)
	peak, trough := 0, 0
	for _, at := range times {
		phase := math.Mod(at, 2.0) / 2.0
		switch {
		case phase >= 0.125 && phase < 0.375: // around sin peak t=0.5s
			peak++
		case phase >= 0.625 && phase < 0.875: // around sin trough t=1.5s
			trough++
		}
	}
	if peak <= trough*2 {
		t.Fatalf("sinusoid: peak quarter %d vs trough quarter %d — modulation missing", peak, trough)
	}
}

// TestMarkovBurstDutyCycle is the satellite property: the realized mean
// rate matches the stationary mixture d·Burst + (1−d)·Base, and the
// burst-attributable overshoot above Base matches the stationary duty
// cycle.
func TestMarkovBurstDutyCycle(t *testing.T) {
	m := MarkovBurst{Base: 100, Burst: 1500, MeanOn: 200 * time.Millisecond, MeanOff: 600 * time.Millisecond}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.DutyCycle(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("duty cycle %v, want %v", got, want)
	}
	const horizon = 200.0
	total := 0
	for seed := int64(1); seed <= 5; seed++ {
		total += len(countArrivals(t, m, seed, horizon))
	}
	realized := float64(total) / (horizon * 5)
	// Dwell-segment noise dominates Poisson noise here: 200 s holds only
	// ~250 on/off cycles, so the realized rate carries a few-percent
	// sigma. 10% is still tight enough to catch a wrong stationary
	// distribution (e.g. always starting "off" would bias low by design).
	if rel := math.Abs(realized-m.MeanRate()) / m.MeanRate(); rel > 0.10 {
		t.Fatalf("burst: realized mean rate %.1f, want %.1f ±10%% (off %.2f%%)", realized, m.MeanRate(), rel*100)
	}
	// Back out the realized duty cycle from the rate mixture.
	d := (realized - m.Base) / (m.Burst - m.Base)
	if math.Abs(d-m.DutyCycle()) > 0.05 {
		t.Fatalf("burst: realized duty cycle %.3f, want %.3f ±0.05", d, m.DutyCycle())
	}
}

// TestFlashCrowdMonotoneRamp is the satellite property: the rate
// function is monotone non-decreasing from t=0 through the end of the
// ramp, holds Peak exactly, and returns to Base after the decay.
func TestFlashCrowdMonotoneRamp(t *testing.T) {
	f := FlashCrowd{Base: 150, Peak: 3000,
		Start: time.Second, Ramp: 400 * time.Millisecond,
		Hold: 600 * time.Millisecond, Decay: 400 * time.Millisecond}
	if err := f.validate(); err != nil {
		t.Fatal(err)
	}
	rampEnd := (f.Start + f.Ramp).Seconds()
	prev := math.Inf(-1)
	for t64 := 0.0; t64 <= rampEnd+1e-9; t64 += rampEnd / 4000 {
		r := f.RateAt(t64)
		if r < prev-1e-9 {
			t.Fatalf("flash: rate decreased before peak: rate(%.4f)=%.3f after %.3f", t64, r, prev)
		}
		prev = r
	}
	if got := f.RateAt(rampEnd + f.Hold.Seconds()/2); got != f.Peak {
		t.Fatalf("flash: hold rate %v, want peak %v", got, f.Peak)
	}
	after := (f.Start + f.Ramp + f.Hold + f.Decay).Seconds() + 0.001
	if got := f.RateAt(after); got != f.Base {
		t.Fatalf("flash: post-decay rate %v, want base %v", got, f.Base)
	}
	// The realized schedule must reflect the spike: arrivals per second
	// during the hold window ≫ arrivals per second before the start.
	times := countArrivals(t, f, 3, 3.0)
	var before, during int
	for _, at := range times {
		if at < f.Start.Seconds() {
			before++
		} else if at >= rampEnd && at < rampEnd+f.Hold.Seconds() {
			during++
		}
	}
	beforeRate := float64(before) / f.Start.Seconds()
	duringRate := float64(during) / f.Hold.Seconds()
	if duringRate < 5*beforeRate {
		t.Fatalf("flash: hold rate %.1f/s not ≫ pre-start rate %.1f/s", duringRate, beforeRate)
	}
}

// TestScheduleBitDeterministic is the satellite determinism property:
// 20 seeds, every builtin scenario, schedule realized twice —
// reflect.DeepEqual down to the float bits — and once under a different
// GOMAXPROCS setting.
func TestScheduleBitDeterministic(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 20; seed++ {
			a, err := sc.Schedule(seed, 500*time.Millisecond)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			b, err := sc.Schedule(seed, 500*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: schedule not deterministic across runs", name, seed)
			}
		}
	}
	// GOMAXPROCS independence: generation is strictly sequential, so a
	// single-P run must reproduce the default-P run bit for bit.
	sc, _ := Builtin("mixed")
	want, err := sc.Schedule(42, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(1)
	got, err := sc.Schedule(42, time.Second)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("schedule differs under GOMAXPROCS=1")
	}
}

// TestScheduleShape pins structural invariants: offsets ascending
// within horizon, cohorts named, every request valid for its wire
// forms, and adding a cohort never perturbs the existing cohorts'
// streams (the per-cohort seed derivation property).
func TestScheduleShape(t *testing.T) {
	sc, _ := Builtin("mixed")
	items, err := sc.Schedule(7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("empty schedule")
	}
	cohorts := map[string]int{}
	var prev time.Duration = -1
	for i, it := range items {
		if it.Offset < prev {
			t.Fatalf("item %d: offset %v < previous %v", i, it.Offset, prev)
		}
		prev = it.Offset
		if it.Offset < 0 || it.Offset >= time.Second {
			t.Fatalf("item %d: offset %v outside [0, horizon)", i, it.Offset)
		}
		cohorts[it.Cohort]++
		if _, err := EncodeItem(it, FormatBinary); err != nil {
			t.Fatalf("item %d (%s): invalid for binary encoding: %v", i, it.Cohort, err)
		}
	}
	for _, want := range []string{"batch", "interactive", "crowd"} {
		if cohorts[want] == 0 {
			t.Fatalf("cohort %q emitted nothing (got %v)", want, cohorts)
		}
	}

	// Cohort-stream independence: dropping the crowd cohort leaves the
	// batch and interactive streams bit-identical.
	sub := Mix("sub", sc.Cohorts[0], sc.Cohorts[1])
	subItems, err := sub.Schedule(7, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var full []Item
	for _, it := range items {
		if it.Cohort != "crowd" {
			full = append(full, it)
		}
	}
	if !reflect.DeepEqual(full, subItems) {
		t.Fatal("removing a cohort perturbed the remaining cohorts' streams")
	}
}

// TestSpecRoundTrip pins the spec grammar: every builtin renders to a
// spec string that parses back to an identical scenario definition.
func TestSpecRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := sc.Spec()
		back, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", name, spec, err)
		}
		if !reflect.DeepEqual(sc.Cohorts, back.Cohorts) {
			t.Fatalf("%s: spec %q did not round-trip:\n got %#v\nwant %#v", name, spec, back.Cohorts, sc.Cohorts)
		}
		// And the round-tripped scenario schedules identically.
		a, err := sc.Schedule(3, 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Schedule(3, 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: round-tripped scenario schedules differently", name)
		}
	}
}

// TestParseRejects pins the parser's failure modes.
func TestParseRejects(t *testing.T) {
	cases := []string{
		"",
		"nonsense",
		"constant",                    // no parens
		"constant()",                  // missing rate
		"constant(rate=abc)",          // not a number
		"constant(rate=100,rate=200)", // duplicate key
		"constant(rate=100,bogus=1)",  // unknown key
		"warp(rate=100)",              // unknown generator
		"sinusoid(mean=100,amp=0.9,period=1s,amp2=0.5,period2=2s)", // amp sum > 1
		"burst(base=100,burst=50,on=1s,off=1s)",                    // burst ≤ base
		"flash(base=1,peak=2,start=0s,ramp=0s,hold=1s,decay=1s)",   // zero ramp
	}
	for _, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

// TestWorkloadValidation pins workload bounds checking.
func TestWorkloadValidation(t *testing.T) {
	bad := []Workload{
		{Mixes: -1},
		{Mixes: 5000},
		{MaxP: 65},
		{Comm: 1.5},
		{Homogeneous: -0.1},
		{J: math.NaN()},
	}
	for i, w := range bad {
		if err := w.validate(); err == nil {
			t.Errorf("workload %d (%+v) validated, want error", i, w)
		}
	}
	if err := (Workload{}).validate(); err != nil {
		t.Errorf("zero workload (defaults) rejected: %v", err)
	}
}

// TestGeneratorValidation sweeps invalid generator parameters.
func TestGeneratorValidation(t *testing.T) {
	bad := []Arrivals{
		Constant{Rate: 0},
		Constant{Rate: math.Inf(1)},
		Sinusoid{Mean: 100},
		Sinusoid{Mean: -1, Terms: []Term{{Amp: 0.5, Period: time.Second}}},
		Sinusoid{Mean: 100, Terms: []Term{{Amp: 1.5, Period: time.Second}}},
		Sinusoid{Mean: 100, Terms: []Term{{Amp: 0.5, Period: 0}}},
		MarkovBurst{Base: 100, Burst: 100, MeanOn: time.Second, MeanOff: time.Second},
		MarkovBurst{Base: 100, Burst: 200, MeanOn: 0, MeanOff: time.Second},
		FlashCrowd{Base: 100, Peak: 50, Start: 0, Ramp: time.Second},
		FlashCrowd{Base: 100, Peak: 200, Start: -time.Second, Ramp: time.Second},
	}
	for i, a := range bad {
		if err := a.validate(); err == nil {
			t.Errorf("generator %d (%s) validated, want error", i, a.Spec())
		}
	}
}

// TestCohortSeedSpread sanity-checks the seed derivation: distinct
// cohort names yield distinct streams for the same scenario seed.
func TestCohortSeedSpread(t *testing.T) {
	seen := map[int64]string{}
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("cohort-%d", i)
		s := cohortSeed(12345, name)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cohort seeds collide: %q and %q → %d", prev, name, s)
		}
		seen[s] = name
	}
}
