package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Parse builds a scenario from its spec string. Grammar:
//
//	scenario := cohort { "+" cohort }
//	cohort   := [ name "=" ] gen "(" key "=" val { "," key "=" val } ")"
//	gen      := "constant" | "sinusoid" | "burst" | "flash"
//
// Generator keys:
//
//	constant: rate
//	sinusoid: mean, amp, period, phase (amp2/period2/phase2, … for
//	          additional harmonics)
//	burst:    base, burst, on, off
//	flash:    base, peak, start, ramp, hold, decay
//
// Workload keys, valid on any cohort: mixes, maxp, homog, comm, j.
// Durations use time.ParseDuration syntax ("250ms"); everything else is
// a float. A cohort without an explicit name is named after its
// generator (suffixed with its position when that collides). Parse also
// accepts a built-in scenario name (see Builtin).
func Parse(spec string) (*Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("scenario: empty spec")
	}
	if sc, err := Builtin(spec); err == nil {
		return sc, nil
	}
	parts := strings.Split(spec, "+")
	sc := &Scenario{Name: spec}
	for i, part := range parts {
		c, err := parseCohort(strings.TrimSpace(part), i)
		if err != nil {
			return nil, err
		}
		for _, prev := range sc.Cohorts {
			if prev.Name == c.Name {
				c.Name = fmt.Sprintf("%s%d", c.Name, i+1)
			}
		}
		sc.Cohorts = append(sc.Cohorts, c)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseCohort(part string, idx int) (Cohort, error) {
	var c Cohort
	open := strings.IndexByte(part, '(')
	if open < 0 || !strings.HasSuffix(part, ")") {
		return c, fmt.Errorf("scenario: cohort %q is not name=gen(key=val,...)", part)
	}
	head, body := part[:open], part[open+1:len(part)-1]
	gen := head
	if eq := strings.IndexByte(head, '='); eq >= 0 {
		c.Name, gen = strings.TrimSpace(head[:eq]), strings.TrimSpace(head[eq+1:])
	}
	if c.Name == "" {
		c.Name = gen
	}
	kv := map[string]string{}
	if strings.TrimSpace(body) != "" {
		for _, pair := range strings.Split(body, ",") {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return c, fmt.Errorf("scenario: cohort %q: %q is not key=val", part, pair)
			}
			k := strings.TrimSpace(pair[:eq])
			if _, dup := kv[k]; dup {
				return c, fmt.Errorf("scenario: cohort %q: duplicate key %q", part, k)
			}
			kv[k] = strings.TrimSpace(pair[eq+1:])
		}
	}
	p := &kvParser{kv: kv, ctx: part}
	switch gen {
	case "constant":
		c.Arrivals = Constant{Rate: p.f("rate")}
	case "sinusoid":
		s := Sinusoid{Mean: p.f("mean")}
		s.Terms = append(s.Terms, Term{Amp: p.f("amp"), Period: p.d("period"), Phase: p.fDefault("phase", 0)})
		for n := 2; ; n++ {
			ampKey := fmt.Sprintf("amp%d", n)
			if _, ok := kv[ampKey]; !ok {
				break
			}
			s.Terms = append(s.Terms, Term{
				Amp:    p.f(ampKey),
				Period: p.d(fmt.Sprintf("period%d", n)),
				Phase:  p.fDefault(fmt.Sprintf("phase%d", n), 0),
			})
		}
		c.Arrivals = s
	case "burst":
		c.Arrivals = MarkovBurst{Base: p.f("base"), Burst: p.f("burst"), MeanOn: p.d("on"), MeanOff: p.d("off")}
	case "flash":
		c.Arrivals = FlashCrowd{Base: p.f("base"), Peak: p.f("peak"),
			Start: p.d("start"), Ramp: p.d("ramp"), Hold: p.d("hold"), Decay: p.d("decay")}
	default:
		return c, fmt.Errorf("scenario: unknown generator %q (want constant, sinusoid, burst, or flash)", gen)
	}
	c.Workload = Workload{
		Mixes:       int(p.fDefault("mixes", 0)),
		MaxP:        int(p.fDefault("maxp", 0)),
		Homogeneous: p.fDefault("homog", 0),
		Comm:        p.fDefault("comm", 0),
		J:           p.fDefault("j", 0),
	}
	if p.err != nil {
		return c, p.err
	}
	if len(p.kv) > 0 {
		keys := make([]string, 0, len(p.kv))
		for k := range p.kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return c, fmt.Errorf("scenario: cohort %q: unknown keys %v", part, keys)
	}
	return c, nil
}

// kvParser consumes keys out of kv, accumulating the first error.
type kvParser struct {
	kv  map[string]string
	ctx string
	err error
}

func (p *kvParser) take(key string) (string, bool) {
	v, ok := p.kv[key]
	if ok {
		delete(p.kv, key)
	}
	return v, ok
}

func (p *kvParser) f(key string) float64 {
	v, ok := p.take(key)
	if !ok {
		p.fail(fmt.Errorf("scenario: cohort %q: missing key %q", p.ctx, key))
		return 0
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(fmt.Errorf("scenario: cohort %q: %s=%q is not a number", p.ctx, key, v))
	}
	return x
}

func (p *kvParser) fDefault(key string, def float64) float64 {
	if _, ok := p.kv[key]; !ok {
		return def
	}
	return p.f(key)
}

func (p *kvParser) d(key string) time.Duration {
	v, ok := p.take(key)
	if !ok {
		p.fail(fmt.Errorf("scenario: cohort %q: missing key %q", p.ctx, key))
		return 0
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail(fmt.Errorf("scenario: cohort %q: %s=%q is not a duration", p.ctx, key, v))
	}
	return d
}

func (p *kvParser) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// BuiltinNames lists the named scenarios Builtin accepts, in sweep
// order.
func BuiltinNames() []string {
	return []string{"steady", "diurnal", "bursty", "flashcrowd", "mixed"}
}

// Builtin returns a named built-in scenario — the shapes the sweep
// matrix and the loadgen smoke runs exercise. Rates are sized for
// bounded single-host smokes, not saturation tests.
func Builtin(name string) (*Scenario, error) {
	switch name {
	case "steady":
		return Single("steady", Constant{Rate: 400}, Workload{}), nil
	case "diurnal":
		return Single("diurnal", Sinusoid{Mean: 400, Terms: []Term{
			{Amp: 0.5, Period: 2 * time.Second},
			{Amp: 0.25, Period: 500 * time.Millisecond},
		}}, Workload{}), nil
	case "bursty":
		return Single("bursty", MarkovBurst{
			Base: 100, Burst: 1500,
			MeanOn: 200 * time.Millisecond, MeanOff: 600 * time.Millisecond,
		}, Workload{}), nil
	case "flashcrowd":
		return Single("flashcrowd", FlashCrowd{
			Base: 150, Peak: 3000,
			Start: time.Second, Ramp: 400 * time.Millisecond,
			Hold: 600 * time.Millisecond, Decay: 400 * time.Millisecond,
		}, Workload{}), nil
	case "mixed":
		// Three cohorts with deliberately different contender mixes and
		// kind weights: a comp-heavy batch population, a comm-heavy
		// interactive one riding a diurnal wave, and a homogeneous flash
		// crowd that stresses one batch key.
		return Mix("mixed",
			Cohort{Name: "batch", Arrivals: Constant{Rate: 150},
				Workload: Workload{Comm: 0.2, J: 0.3, Mixes: 4}},
			Cohort{Name: "interactive", Arrivals: Sinusoid{Mean: 250,
				Terms: []Term{{Amp: 0.6, Period: time.Second}}},
				Workload: Workload{Comm: 0.8, Mixes: 12}},
			Cohort{Name: "crowd", Arrivals: FlashCrowd{Base: 50, Peak: 1200,
				Start: 1200 * time.Millisecond, Ramp: 300 * time.Millisecond,
				Hold: 400 * time.Millisecond, Decay: 300 * time.Millisecond},
				Workload: Workload{Homogeneous: 1, Mixes: 2, MaxP: 3}},
		), nil
	default:
		return nil, fmt.Errorf("scenario: unknown built-in %q (have %s)", name, strings.Join(BuiltinNames(), ", "))
	}
}
