// Trace format contention/trace/v1: a checksummed header plus
// length-prefixed binary records, recording a schedule of wire-encoded
// prediction requests — and, when recording served traffic, the
// response each one received. The format is the bridge between the
// three drivers that consume structured load: cmd/loadgen records live
// traffic and replays it open-loop, the DES-clocked experiments driver
// replays the same trace on virtual time against the model core, and
// the replay-differential tests assert the served stack reproduces a
// recorded run bit-for-bit.
//
// Layout (all integers little-endian):
//
//	u32  magic "CTRC"
//	u32  header length (JSON bytes; capped at maxHeaderBytes)
//	     header JSON: {"schema","seed","scenario","horizon_ms","format","served"}
//	u64  FNV-1a checksum of the header JSON
//	then zero or more records:
//	u32  frame length (bytes between this prefix and the checksum)
//	     u64  arrival offset, nanoseconds from run start
//	     u8   cohort-name length, cohort bytes
//	     u32  request length, wire request bytes (header Format decides
//	          whether they are JSON or the binary predict format)
//	     u8   flags (bit0: response follows)
//	     f64  response value      ┐
//	     u32  batch size          │ present when
//	     u16  HTTP status         │ flags bit0
//	     u8   rflags (bit0 degraded, bit1 fast)
//	     u16  reason length, reason bytes ┘
//	u32  FNV-1a (32-bit) checksum of the frame
//
// Every structural fault — bad magic, unknown schema, checksum
// mismatch, truncation, over-long or inconsistent lengths — surfaces as
// a typed error wrapping one of the Err sentinels below; the decoder
// never panics and never reads past a declared length
// (FuzzReadTraceHeader / FuzzDecodeTraceRecord).
package scenario

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"contention/internal/serve"
)

// TraceSchema is the schema-version string stamped into every header.
const TraceSchema = "contention/trace/v1"

// Wire formats a trace can carry request bytes in.
const (
	FormatJSON   = "json"
	FormatBinary = "binary"
)

const (
	traceMagic     = 0x43525443 // "CTRC" little-endian
	maxHeaderBytes = 1 << 16
	maxRecordBytes = serve.MaxBodyBytes + 1<<10 // one request + record overhead
	maxCohortBytes = 255

	recFlagResponse = 1
	recRespDegraded = 1
	recRespFast     = 2
)

// Typed trace faults. Readers wrap these, so errors.Is works through
// the added context.
var (
	// ErrTraceMagic reports a stream that is not a trace at all.
	ErrTraceMagic = errors.New("scenario: not a contention trace (bad magic)")
	// ErrTraceSchema reports an unknown schema version in the header.
	ErrTraceSchema = errors.New("scenario: unsupported trace schema")
	// ErrTraceChecksum reports header or record checksum mismatch.
	ErrTraceChecksum = errors.New("scenario: trace checksum mismatch")
	// ErrTraceCorrupt reports structural damage: truncation, over-long
	// declared lengths, or inconsistent framing.
	ErrTraceCorrupt = errors.New("scenario: corrupt trace")
)

// TraceHeader identifies a trace: where its schedule came from and how
// its request bytes are encoded.
type TraceHeader struct {
	Schema string `json:"schema"`
	// Seed is the scenario seed the schedule was generated from.
	Seed int64 `json:"seed"`
	// Scenario is the canonical scenario spec string ("" for traces
	// recorded from non-scenario traffic).
	Scenario string `json:"scenario,omitempty"`
	// HorizonMS is the schedule horizon in milliseconds.
	HorizonMS int64 `json:"horizon_ms,omitempty"`
	// Format is the wire format of the record request bytes: FormatJSON
	// or FormatBinary.
	Format string `json:"format"`
	// Served marks a trace recorded from served traffic (records carry
	// responses), as opposed to a bare generated schedule.
	Served bool `json:"served,omitempty"`
}

// Record is one trace entry: a timestamped wire request and, in served
// traces, the response it received.
type Record struct {
	Offset time.Duration
	Cohort string
	// Req is the wire-encoded request body, verbatim.
	Req []byte
	// HasResp marks records carrying a served response.
	HasResp bool
	// Status is the HTTP status the request received (0 = transport
	// failure, no response recorded).
	Status int
	// Resp carries value/degraded/fast/batch/reason for 200 responses.
	Resp serve.Response
}

// marshalJSONRequest renders a request as the JSON wire body. Go's
// json.Marshal is deterministic for struct values (fields in
// declaration order), so equal requests always produce equal bytes —
// the property trace byte-determinism rests on.
func marshalJSONRequest(req *serve.Request) ([]byte, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding request: %w", err)
	}
	return b, nil
}

// --- writer -----------------------------------------------------------------

// TraceWriter streams records to w. Writes are buffered; call Flush
// before reading the destination.
type TraceWriter struct {
	w   *bufio.Writer
	buf []byte
	n   int
}

// NewTraceWriter writes the checksummed header and returns a writer.
// An empty hdr.Schema is stamped with TraceSchema; the format must be
// FormatJSON or FormatBinary.
func NewTraceWriter(w io.Writer, hdr TraceHeader) (*TraceWriter, error) {
	if hdr.Schema == "" {
		hdr.Schema = TraceSchema
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("%w: %q", ErrTraceSchema, hdr.Schema)
	}
	if hdr.Format != FormatJSON && hdr.Format != FormatBinary {
		return nil, fmt.Errorf("scenario: trace format %q must be %q or %q", hdr.Format, FormatJSON, FormatBinary)
	}
	js, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding trace header: %w", err)
	}
	if len(js) > maxHeaderBytes {
		return nil, fmt.Errorf("%w: header is %d bytes (max %d)", ErrTraceCorrupt, len(js), maxHeaderBytes)
	}
	bw := bufio.NewWriter(w)
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:], traceMagic)
	binary.LittleEndian.PutUint32(pre[4:], uint32(len(js)))
	if _, err := bw.Write(pre[:]); err != nil {
		return nil, err
	}
	if _, err := bw.Write(js); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(js)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	if _, err := bw.Write(sum[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one record.
func (tw *TraceWriter) Write(rec *Record) error {
	if len(rec.Cohort) > maxCohortBytes {
		return fmt.Errorf("scenario: cohort name %d bytes exceeds %d", len(rec.Cohort), maxCohortBytes)
	}
	if rec.Offset < 0 {
		return fmt.Errorf("scenario: negative record offset %v", rec.Offset)
	}
	frame := marshalRecord(tw.buf[:0], rec)
	if len(frame) > maxRecordBytes {
		return fmt.Errorf("%w: record frame is %d bytes (max %d)", ErrTraceCorrupt, len(frame), maxRecordBytes)
	}
	tw.buf = frame
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(frame)))
	if _, err := tw.w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := tw.w.Write(frame); err != nil {
		return err
	}
	h := fnv.New32a()
	h.Write(frame)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	if _, err := tw.w.Write(sum[:]); err != nil {
		return err
	}
	tw.n++
	mTraceWrites.Inc()
	return nil
}

// Count reports records written so far.
func (tw *TraceWriter) Count() int { return tw.n }

// Flush drains the write buffer.
func (tw *TraceWriter) Flush() error { return tw.w.Flush() }

// marshalRecord encodes the frame body (everything between the length
// prefix and the trailing checksum).
func marshalRecord(dst []byte, rec *Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Offset))
	dst = append(dst, byte(len(rec.Cohort)))
	dst = append(dst, rec.Cohort...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Req)))
	dst = append(dst, rec.Req...)
	if !rec.HasResp {
		return append(dst, 0)
	}
	dst = append(dst, recFlagResponse)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Resp.Value))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.Resp.Batch))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(rec.Status))
	var rf byte
	if rec.Resp.Degraded {
		rf |= recRespDegraded
	}
	if rec.Resp.Fast {
		rf |= recRespFast
	}
	dst = append(dst, rf)
	reason := rec.Resp.Reason
	if len(reason) > 1<<16-1 {
		reason = reason[:1<<16-1]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(reason)))
	return append(dst, reason...)
}

// --- reader -----------------------------------------------------------------

// TraceReader streams records back out of a trace.
type TraceReader struct {
	r   *bufio.Reader
	hdr TraceHeader
	buf []byte
	n   int
}

// NewTraceReader parses and verifies the header. All failures wrap a
// typed sentinel.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var pre [8]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("%w: missing preamble: %v", ErrTraceCorrupt, err)
	}
	if binary.LittleEndian.Uint32(pre[0:]) != traceMagic {
		return nil, ErrTraceMagic
	}
	n := binary.LittleEndian.Uint32(pre[4:])
	if n > maxHeaderBytes {
		return nil, fmt.Errorf("%w: header declares %d bytes (max %d)", ErrTraceCorrupt, n, maxHeaderBytes)
	}
	js := make([]byte, n)
	if _, err := io.ReadFull(br, js); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrTraceCorrupt, err)
	}
	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header checksum: %v", ErrTraceCorrupt, err)
	}
	h := fnv.New64a()
	h.Write(js)
	if h.Sum64() != binary.LittleEndian.Uint64(sum[:]) {
		return nil, fmt.Errorf("%w: header", ErrTraceChecksum)
	}
	var hdr TraceHeader
	if err := json.Unmarshal(js, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header JSON: %v", ErrTraceCorrupt, err)
	}
	if hdr.Schema != TraceSchema {
		return nil, fmt.Errorf("%w: %q (want %q)", ErrTraceSchema, hdr.Schema, TraceSchema)
	}
	if hdr.Format != FormatJSON && hdr.Format != FormatBinary {
		return nil, fmt.Errorf("%w: unknown wire format %q", ErrTraceCorrupt, hdr.Format)
	}
	return &TraceReader{r: br, hdr: hdr}, nil
}

// Header returns the verified trace header.
func (tr *TraceReader) Header() TraceHeader { return tr.hdr }

// Count reports records returned so far.
func (tr *TraceReader) Count() int { return tr.n }

// Next returns the next record, or io.EOF at a clean end of stream.
// The record's byte slices are private copies; callers may retain them.
func (tr *TraceReader) Next() (Record, error) {
	var pre [4]byte
	if _, err := io.ReadFull(tr.r, pre[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: truncated record prefix: %v", ErrTraceCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(pre[:])
	if n > maxRecordBytes {
		return Record{}, fmt.Errorf("%w: record declares %d bytes (max %d)", ErrTraceCorrupt, n, maxRecordBytes)
	}
	if cap(tr.buf) < int(n) {
		tr.buf = make([]byte, n)
	}
	frame := tr.buf[:n]
	if _, err := io.ReadFull(tr.r, frame); err != nil {
		return Record{}, fmt.Errorf("%w: truncated record (%d declared bytes): %v", ErrTraceCorrupt, n, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(tr.r, sum[:]); err != nil {
		return Record{}, fmt.Errorf("%w: truncated record checksum: %v", ErrTraceCorrupt, err)
	}
	h := fnv.New32a()
	h.Write(frame)
	if h.Sum32() != binary.LittleEndian.Uint32(sum[:]) {
		return Record{}, fmt.Errorf("%w: record %d", ErrTraceChecksum, tr.n)
	}
	rec, err := unmarshalRecord(frame)
	if err != nil {
		return Record{}, err
	}
	tr.n++
	mTraceReads.Inc()
	return rec, nil
}

// unmarshalRecord decodes one frame body. Every read is bounds-checked
// against the frame, so a hostile length field can never over-read.
func unmarshalRecord(b []byte) (Record, error) {
	var rec Record
	if len(b) < 9 {
		return rec, fmt.Errorf("%w: record frame %d bytes, want ≥9", ErrTraceCorrupt, len(b))
	}
	off := binary.LittleEndian.Uint64(b)
	if off > uint64(1<<62) {
		return rec, fmt.Errorf("%w: absurd record offset %d ns", ErrTraceCorrupt, off)
	}
	rec.Offset = time.Duration(off)
	cl := int(b[8])
	b = b[9:]
	if len(b) < cl {
		return rec, fmt.Errorf("%w: cohort name truncated (%d of %d bytes)", ErrTraceCorrupt, len(b), cl)
	}
	rec.Cohort = string(b[:cl])
	b = b[cl:]
	if len(b) < 4 {
		return rec, fmt.Errorf("%w: request length truncated", ErrTraceCorrupt)
	}
	rl := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if rl > serve.MaxBodyBytes {
		return rec, fmt.Errorf("%w: request declares %d bytes (max %d)", ErrTraceCorrupt, rl, serve.MaxBodyBytes)
	}
	if uint32(len(b)) < rl {
		return rec, fmt.Errorf("%w: request bytes truncated (%d of %d)", ErrTraceCorrupt, len(b), rl)
	}
	rec.Req = append([]byte(nil), b[:rl]...)
	b = b[rl:]
	if len(b) < 1 {
		return rec, fmt.Errorf("%w: record flags missing", ErrTraceCorrupt)
	}
	flags := b[0]
	b = b[1:]
	if flags&^byte(recFlagResponse) != 0 {
		return rec, fmt.Errorf("%w: unknown record flags %#x", ErrTraceCorrupt, flags)
	}
	if flags&recFlagResponse == 0 {
		if len(b) != 0 {
			return rec, fmt.Errorf("%w: %d trailing bytes after record", ErrTraceCorrupt, len(b))
		}
		return rec, nil
	}
	rec.HasResp = true
	if len(b) < 17 {
		return rec, fmt.Errorf("%w: response block truncated (%d of 17 fixed bytes)", ErrTraceCorrupt, len(b))
	}
	rec.Resp.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
	rec.Resp.Batch = int(binary.LittleEndian.Uint32(b[8:]))
	rec.Status = int(binary.LittleEndian.Uint16(b[12:]))
	rf := b[14]
	if rf&^byte(recRespDegraded|recRespFast) != 0 {
		return rec, fmt.Errorf("%w: unknown response flags %#x", ErrTraceCorrupt, rf)
	}
	rec.Resp.Degraded = rf&recRespDegraded != 0
	rec.Resp.Fast = rf&recRespFast != 0
	reasonLen := int(binary.LittleEndian.Uint16(b[15:]))
	b = b[17:]
	if len(b) != reasonLen {
		return rec, fmt.Errorf("%w: reason is %d bytes, declared %d", ErrTraceCorrupt, len(b), reasonLen)
	}
	rec.Resp.Reason = string(b)
	return rec, nil
}

// DecodeRequestBytes parses trace request bytes back into wire form,
// dispatching on the trace's wire format — the inverse of EncodeItem,
// used by the DES replay driver to evaluate recorded requests without
// an HTTP hop.
func DecodeRequestBytes(b []byte, format string) (*serve.Request, error) {
	switch format {
	case FormatJSON:
		return serve.DecodeRequest(bytes.NewReader(b))
	case FormatBinary:
		return serve.DecodeBinaryRequest(b)
	default:
		return nil, fmt.Errorf("scenario: unknown wire format %q (want %q or %q)", format, FormatJSON, FormatBinary)
	}
}

// ReadTrace reads a whole trace into memory.
func ReadTrace(r io.Reader) (TraceHeader, []Record, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return TraceHeader{}, nil, err
	}
	var recs []Record
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return tr.Header(), recs, nil
		}
		if err != nil {
			return tr.Header(), recs, err
		}
		recs = append(recs, rec)
	}
}

// WriteSchedule generates the scenario's schedule for (seed, horizon)
// and writes it as an unserved trace in the given wire format. Byte
// determinism — the same arguments always produce an identical file —
// is pinned by TestTraceByteDeterminism.
func WriteSchedule(w io.Writer, sc *Scenario, seed int64, horizon time.Duration, format string) (int, error) {
	items, err := sc.Schedule(seed, horizon)
	if err != nil {
		return 0, err
	}
	tw, err := NewTraceWriter(w, TraceHeader{
		Seed: seed, Scenario: sc.Spec(), HorizonMS: horizon.Milliseconds(), Format: format,
	})
	if err != nil {
		return 0, err
	}
	for _, it := range items {
		body, err := EncodeItem(it, format)
		if err != nil {
			return tw.Count(), err
		}
		if err := tw.Write(&Record{Offset: it.Offset, Cohort: it.Cohort, Req: body}); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}
