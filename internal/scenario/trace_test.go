package scenario

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"contention/internal/serve"
)

func testRecords() []Record {
	return []Record{
		{Offset: 0, Cohort: "a", Req: []byte(`{"kind":"comp","dcomp":1}`)},
		{Offset: 1500 * time.Microsecond, Cohort: "interactive", Req: []byte{1, 2, 3, 4}},
		{Offset: 2 * time.Millisecond, Cohort: "b", Req: []byte(`{}`),
			HasResp: true, Status: 200, Resp: serve.Response{Value: 3.14159, Batch: 7, Fast: true}},
		{Offset: 3 * time.Millisecond, Cohort: "b", Req: []byte(`bad`),
			HasResp: true, Status: 400, Resp: serve.Response{Reason: "malformed request"}},
		{Offset: 5 * time.Millisecond, Cohort: "c", Req: nil,
			HasResp: true, Status: 200,
			Resp: serve.Response{Value: math.Copysign(0, -1), Batch: 1, Degraded: true, Reason: "stale calibration: test"}},
	}
}

func writeTestTrace(t *testing.T, hdr TraceHeader, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceRoundTrip pins write→read fidelity for every record shape:
// bare schedules, served 200s with fast/batch flags, error statuses
// with reasons, negative-zero values.
func TestTraceRoundTrip(t *testing.T) {
	hdr := TraceHeader{Seed: 42, Scenario: "steady=constant(rate=400)", HorizonMS: 2000, Format: FormatJSON, Served: true}
	recs := testRecords()
	raw := writeTestTrace(t, hdr, recs)

	gotHdr, got, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantHdr := hdr
	wantHdr.Schema = TraceSchema
	if gotHdr != wantHdr {
		t.Fatalf("header %+v, want %+v", gotHdr, wantHdr)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := recs[i]
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

// TestTraceByteDeterminism is half the acceptance criterion: the same
// (scenario, seed, horizon, format) always serializes to an identical
// byte stream, across 20 seeds and both wire formats; a different seed
// changes the stream.
func TestTraceByteDeterminism(t *testing.T) {
	sc, err := Builtin("mixed")
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{FormatJSON, FormatBinary} {
		var prev []byte
		for seed := int64(1); seed <= 20; seed++ {
			var a, b bytes.Buffer
			n1, err := WriteSchedule(&a, sc, seed, 300*time.Millisecond, format)
			if err != nil {
				t.Fatal(err)
			}
			n2, err := WriteSchedule(&b, sc, seed, 300*time.Millisecond, format)
			if err != nil {
				t.Fatal(err)
			}
			if n1 != n2 || !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("%s seed %d: trace not byte-deterministic (%d vs %d records)", format, seed, n1, n2)
			}
			if n1 == 0 {
				t.Fatalf("%s seed %d: empty schedule", format, seed)
			}
			if prev != nil && bytes.Equal(a.Bytes(), prev) {
				t.Fatalf("%s: seeds %d and %d produced identical traces", format, seed-1, seed)
			}
			prev = a.Bytes()
		}
	}
}

// TestTraceScheduleRoundTrip replays a generated trace's bytes back
// into requests and checks them against the schedule that produced it.
func TestTraceScheduleRoundTrip(t *testing.T) {
	sc, err := Builtin("mixed")
	if err != nil {
		t.Fatal(err)
	}
	const seed, horizon = int64(11), 300 * time.Millisecond
	items, err := sc.Schedule(seed, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{FormatJSON, FormatBinary} {
		var buf bytes.Buffer
		if _, err := WriteSchedule(&buf, sc, seed, horizon, format); err != nil {
			t.Fatal(err)
		}
		hdr, recs, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Scenario != sc.Spec() || hdr.Seed != seed {
			t.Fatalf("%s: header %+v does not carry spec/seed", format, hdr)
		}
		if len(recs) != len(items) {
			t.Fatalf("%s: %d records, want %d items", format, len(recs), len(items))
		}
		for i, rec := range recs {
			if rec.Offset != items[i].Offset || rec.Cohort != items[i].Cohort {
				t.Fatalf("%s record %d: (%v,%s) want (%v,%s)",
					format, i, rec.Offset, rec.Cohort, items[i].Offset, items[i].Cohort)
			}
			req, err := DecodeRequestBytes(rec.Req, format)
			if err != nil {
				t.Fatalf("%s record %d: decode: %v", format, i, err)
			}
			if req.Kind != items[i].Req.Kind {
				t.Fatalf("%s record %d: kind %q want %q", format, i, req.Kind, items[i].Req.Kind)
			}
		}
	}
}

// TestTraceTypedErrors pins the corruption taxonomy: magic, schema,
// checksum, and truncation faults each surface as their sentinel, and
// none of them panic.
func TestTraceTypedErrors(t *testing.T) {
	hdr := TraceHeader{Seed: 1, Format: FormatBinary}
	raw := writeTestTrace(t, hdr, testRecords())

	check := func(name string, data []byte, want error) {
		t.Helper()
		_, _, err := ReadTrace(bytes.NewReader(data))
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	check("magic", bad, ErrTraceMagic)

	// Wrong schema: rewrite the header with a bogus schema string.
	var buf bytes.Buffer
	if _, err := NewTraceWriter(&buf, TraceHeader{Schema: "contention/trace/v9", Format: FormatBinary}); !errors.Is(err, ErrTraceSchema) {
		t.Errorf("writer accepted unknown schema: %v", err)
	}
	wrong := writeTestTrace(t, hdr, nil)
	// Flip bytes inside the header JSON region so its checksum breaks.
	wrong[10] ^= 0xff
	check("header-checksum", wrong, ErrTraceChecksum)

	// Record checksum: flip one byte inside the first record body.
	hdrLen := len(writeTestTrace(t, hdr, nil))
	flipped := append([]byte(nil), raw...)
	flipped[hdrLen+6] ^= 0x01
	check("record-checksum", flipped, ErrTraceChecksum)

	// Truncations at every boundary.
	for _, cut := range []int{3, 7, hdrLen - 1, hdrLen + 2, len(raw) - 1} {
		check("truncate", raw[:cut], ErrTraceCorrupt)
	}

	// Empty stream.
	check("empty", nil, ErrTraceCorrupt)

	// A clean trace still reads fully after all that.
	if _, recs, err := ReadTrace(bytes.NewReader(raw)); err != nil || len(recs) != len(testRecords()) {
		t.Fatalf("clean trace: %d records, err %v", len(recs), err)
	}
}

// TestTraceWriterRejects pins writer-side validation.
func TestTraceWriterRejects(t *testing.T) {
	if _, err := NewTraceWriter(io.Discard, TraceHeader{Format: "protobuf"}); err == nil {
		t.Error("writer accepted unknown format")
	}
	tw, err := NewTraceWriter(io.Discard, TraceHeader{Format: FormatJSON})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(&Record{Offset: -time.Second, Cohort: "x"}); err == nil {
		t.Error("writer accepted negative offset")
	}
	long := make([]byte, maxCohortBytes+1)
	if err := tw.Write(&Record{Cohort: string(long)}); err == nil {
		t.Error("writer accepted oversized cohort name")
	}
	if err := tw.Write(&Record{Cohort: "x", Req: make([]byte, maxRecordBytes)}); err == nil {
		t.Error("writer accepted oversized request")
	}
}
