package sched

import (
	"fmt"
	"math"
)

// Load bridges the contention model and the allocation problem: the
// slowdown factors currently in force on one machine and on the links
// touching it. An application-level scheduler (the AppLeS line of work
// this paper feeds, its reference [4]) computes these from the
// predictor and the resource manager's contender registry.
type Load struct {
	// Comp multiplies every execution cost on the machine.
	Comp float64
	// Comm multiplies every transfer cost into or out of the machine.
	Comm float64
}

// Validate checks the factors.
func (l Load) Validate() error {
	if l.Comp < 1 || math.IsNaN(l.Comp) {
		return fmt.Errorf("sched: computation slowdown %v must be ≥ 1", l.Comp)
	}
	if l.Comm < 1 || math.IsNaN(l.Comm) {
		return fmt.Errorf("sched: communication slowdown %v must be ≥ 1", l.Comm)
	}
	return nil
}

// AdjustForLoad returns a copy of the problem with per-machine slowdown
// factors applied: execution costs scale by the machine's Comp factor;
// each transfer scales by the larger Comm factor of its two endpoint
// machines (the shared medium is paced by the more contended side).
// Machines absent from the map are dedicated (factor 1).
func (p Problem) AdjustForLoad(loads map[Machine]Load) (Problem, error) {
	for m, l := range loads {
		if err := l.Validate(); err != nil {
			return Problem{}, fmt.Errorf("machine %q: %w", m, err)
		}
	}
	out := p.clone()
	for t := range out.Exec {
		for m := range out.Exec[t] {
			if l, ok := loads[m]; ok {
				out.Exec[t][m] *= l.Comp
			}
		}
	}
	commFactor := func(a, b Machine) float64 {
		f := 1.0
		if l, ok := loads[a]; ok && l.Comm > f {
			f = l.Comm
		}
		if l, ok := loads[b]; ok && l.Comm > f {
			f = l.Comm
		}
		return f
	}
	for i := range out.Edges {
		for r, c := range out.Edges[i].Cost {
			out.Edges[i].Cost[r] = c * commFactor(r.From, r.To)
		}
	}
	return out, nil
}
