package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// JSON interchange format for allocation problems, used by cmd/schedule
// and any external tool that wants to feed cost tables in:
//
//	{
//	  "tasks": ["A", "B"],
//	  "machines": ["M1", "M2"],
//	  "exec": {"A": {"M1": 12, "M2": 18}, "B": {"M1": 4, "M2": 30}},
//	  "edges": [{"from": "A", "to": "B",
//	             "cost": {"M1>M2": 7, "M2>M1": 8}}]
//	}
//
// Route keys are "FROM>TO" machine pairs.

type jsonEdge struct {
	From string             `json:"from"`
	To   string             `json:"to"`
	Cost map[string]float64 `json:"cost"`
}

type jsonProblem struct {
	Tasks    []string                      `json:"tasks"`
	Machines []string                      `json:"machines"`
	Exec     map[string]map[string]float64 `json:"exec"`
	Edges    []jsonEdge                    `json:"edges"`
}

// ParseJSON reads a problem from JSON and validates it.
func ParseJSON(r io.Reader) (Problem, error) {
	var jp jsonProblem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return Problem{}, fmt.Errorf("sched: decoding problem: %w", err)
	}
	p := Problem{Exec: map[Task]map[Machine]float64{}}
	for _, t := range jp.Tasks {
		p.Tasks = append(p.Tasks, Task(t))
	}
	for _, m := range jp.Machines {
		p.Machines = append(p.Machines, Machine(m))
	}
	for t, row := range jp.Exec {
		mrow := map[Machine]float64{}
		for m, c := range row {
			mrow[Machine(m)] = c
		}
		p.Exec[Task(t)] = mrow
	}
	for _, e := range jp.Edges {
		cost := map[Route]float64{}
		for key, c := range e.Cost {
			parts := strings.SplitN(key, ">", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				return Problem{}, fmt.Errorf("sched: bad route key %q (want \"M1>M2\")", key)
			}
			cost[Route{From: Machine(parts[0]), To: Machine(parts[1])}] = c
		}
		p.Edges = append(p.Edges, Edge{From: Task(e.From), To: Task(e.To), Cost: cost})
	}
	if err := p.Validate(); err != nil {
		return Problem{}, err
	}
	return p, nil
}

// MarshalJSON renders the problem in the interchange format (the
// inverse of ParseJSON), with deterministic key order courtesy of
// encoding/json's map sorting.
func (p Problem) MarshalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	jp := jsonProblem{Exec: map[string]map[string]float64{}}
	for _, t := range p.Tasks {
		jp.Tasks = append(jp.Tasks, string(t))
	}
	for _, m := range p.Machines {
		jp.Machines = append(jp.Machines, string(m))
	}
	for t, row := range p.Exec {
		srow := map[string]float64{}
		for m, c := range row {
			srow[string(m)] = c
		}
		jp.Exec[string(t)] = srow
	}
	for _, e := range p.Edges {
		cost := map[string]float64{}
		for r, c := range e.Cost {
			cost[string(r.From)+">"+string(r.To)] = c
		}
		jp.Edges = append(jp.Edges, jsonEdge{From: string(e.From), To: string(e.To), Cost: cost})
	}
	sort.Slice(jp.Edges, func(i, j int) bool {
		if jp.Edges[i].From != jp.Edges[j].From {
			return jp.Edges[i].From < jp.Edges[j].From
		}
		return jp.Edges[i].To < jp.Edges[j].To
	})
	return json.Marshal(jp)
}
