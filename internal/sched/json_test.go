package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const paperJSON = `{
  "tasks": ["A", "B"],
  "machines": ["M1", "M2"],
  "exec": {"A": {"M1": 12, "M2": 18}, "B": {"M1": 4, "M2": 30}},
  "edges": [{"from": "A", "to": "B",
             "cost": {"M1>M2": 7, "M2>M1": 8}}]
}`

func TestParseJSONPaperExample(t *testing.T) {
	p, err := ParseJSON(strings.NewReader(paperJSON))
	if err != nil {
		t.Fatal(err)
	}
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 16 {
		t.Fatalf("makespan %v, want 16", best.Makespan)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // truncated
		`{"tasks": ["A"], "machines": ["M"], "exec": {"A": {"M": 1}}, "bogus": 1}`,                                                     // unknown field
		`{"tasks": ["A"], "machines": ["M"], "exec": {}}`,                                                                              // missing costs
		`{"tasks": ["A","B"], "machines": ["M"], "exec": {"A":{"M":1},"B":{"M":1}}, "edges":[{"from":"A","to":"B","cost":{"bad":1}}]}`, // bad route key
		`{"tasks": ["A","B"], "machines": ["M"], "exec": {"A":{"M":1},"B":{"M":1}}, "edges":[{"from":"A","to":"B","cost":{">M":1}}]}`,  // empty machine
		`{"tasks": ["A"], "machines": ["M"], "exec": {"A": {"M": -1}}}`,                                                                // invalid cost
	}
	for i, src := range cases {
		if _, err := ParseJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := PaperExample()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("round trip parse: %v\njson: %s", err, data)
	}
	b1, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := back.Best()
	if err != nil {
		t.Fatal(err)
	}
	if b1.Makespan != b2.Makespan || b1.Assignment.String() != b2.Assignment.String() {
		t.Fatalf("round trip changed the problem: %v vs %v", b1, b2)
	}
}

func TestMarshalJSONValidates(t *testing.T) {
	var empty Problem
	if _, err := json.Marshal(empty); err == nil {
		t.Fatal("marshaling an invalid problem did not error")
	}
}
