// Package sched implements the allocation layer the contention model
// feeds: given dedicated execution and communication cost tables for a
// chain of coarse-grained tasks on a two-machine (or n-machine)
// heterogeneous platform, it enumerates assignments and ranks them by
// predicted makespan. Slowdown factors from package core adjust the
// dedicated costs for load, reproducing the paper's §1 example
// (Tables 1–4), where contention flips the optimal allocation.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task names one coarse-grained application task.
type Task string

// Machine names one machine of the platform.
type Machine string

// Route identifies a directed machine pair for communication costs.
type Route struct {
	From, To Machine
}

// Edge is a data dependency between consecutive tasks: if its endpoints
// are placed on different machines, the transfer cost for the machine
// pair applies (same-machine transfers are free).
type Edge struct {
	From, To Task
	Cost     map[Route]float64
}

// Problem is a chain-structured allocation problem: tasks execute in
// the order given (the paper's applications are "a few coarse-grained
// tasks" in a pipeline), and consecutive tasks may exchange data.
type Problem struct {
	Tasks    []Task
	Machines []Machine
	// Exec[t][m] is the dedicated execution time of t on m.
	Exec map[Task]map[Machine]float64
	// Edges lists inter-task transfers (usually len(Tasks)-1 of them).
	Edges []Edge
}

// Validate checks the problem for completeness.
func (p Problem) Validate() error {
	if len(p.Tasks) == 0 {
		return errors.New("sched: no tasks")
	}
	if len(p.Machines) == 0 {
		return errors.New("sched: no machines")
	}
	seen := map[Task]bool{}
	for _, t := range p.Tasks {
		if seen[t] {
			return fmt.Errorf("sched: duplicate task %q", t)
		}
		seen[t] = true
		row, ok := p.Exec[t]
		if !ok {
			return fmt.Errorf("sched: no execution costs for task %q", t)
		}
		for _, m := range p.Machines {
			c, ok := row[m]
			if !ok {
				return fmt.Errorf("sched: no cost for task %q on machine %q", t, m)
			}
			if c < 0 || math.IsNaN(c) {
				return fmt.Errorf("sched: invalid cost %v for task %q on %q", c, t, m)
			}
		}
	}
	for _, e := range p.Edges {
		if !seen[e.From] || !seen[e.To] {
			return fmt.Errorf("sched: edge %q→%q references unknown task", e.From, e.To)
		}
		for r, c := range e.Cost {
			if c < 0 || math.IsNaN(c) {
				return fmt.Errorf("sched: invalid transfer cost %v on %v→%v", c, r.From, r.To)
			}
		}
	}
	return nil
}

// Assignment maps each task to a machine.
type Assignment map[Task]Machine

// String renders an assignment deterministically.
func (a Assignment) String() string {
	tasks := make([]string, 0, len(a))
	for t := range a {
		tasks = append(tasks, string(t))
	}
	sort.Strings(tasks)
	out := ""
	for i, t := range tasks {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s→%s", t, a[Task(t)])
	}
	return out
}

// Evaluate returns the makespan of the assignment: the chain executes
// sequentially, paying each task's execution cost on its machine plus
// the transfer cost of every edge whose endpoints differ.
func (p Problem) Evaluate(a Assignment) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, t := range p.Tasks {
		m, ok := a[t]
		if !ok {
			return 0, fmt.Errorf("sched: task %q unassigned", t)
		}
		c, ok := p.Exec[t][m]
		if !ok {
			return 0, fmt.Errorf("sched: task %q assigned to unknown machine %q", t, m)
		}
		total += c
	}
	for _, e := range p.Edges {
		mf, mt := a[e.From], a[e.To]
		if mf == mt {
			continue
		}
		c, ok := e.Cost[Route{From: mf, To: mt}]
		if !ok {
			return 0, fmt.Errorf("sched: no transfer cost %q(%s)→%q(%s)", e.From, mf, e.To, mt)
		}
		total += c
	}
	return total, nil
}

// Ranked is one candidate allocation with its predicted makespan.
type Ranked struct {
	Assignment Assignment
	Makespan   float64
}

// Rank enumerates every assignment and returns them sorted by makespan
// (ties broken by assignment string for determinism).
func (p Problem) Rank() ([]Ranked, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Tasks)
	m := len(p.Machines)
	count := 1
	for i := 0; i < n; i++ {
		count *= m
		if count > 1<<20 {
			return nil, fmt.Errorf("sched: %d tasks × %d machines too large to enumerate", n, m)
		}
	}
	out := make([]Ranked, 0, count)
	idx := make([]int, n)
	for {
		a := make(Assignment, n)
		for i, t := range p.Tasks {
			a[t] = p.Machines[idx[i]]
		}
		ms, err := p.Evaluate(a)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{Assignment: a, Makespan: ms})
		// Advance the mixed-radix counter.
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < m {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Makespan != out[j].Makespan {
			return out[i].Makespan < out[j].Makespan
		}
		return out[i].Assignment.String() < out[j].Assignment.String()
	})
	return out, nil
}

// Best returns the minimum-makespan assignment.
func (p Problem) Best() (Ranked, error) {
	ranked, err := p.Rank()
	if err != nil {
		return Ranked{}, err
	}
	return ranked[0], nil
}

// ScaleExec returns a copy of the problem with every execution cost on
// machine m multiplied by factor — the effect of computation slowdown
// on a loaded machine.
func (p Problem) ScaleExec(m Machine, factor float64) Problem {
	out := p.clone()
	for t := range out.Exec {
		if c, ok := out.Exec[t][m]; ok {
			out.Exec[t][m] = c * factor
		}
	}
	return out
}

// ScaleComm returns a copy with every transfer cost multiplied by
// factor — the effect of communication slowdown on the shared link.
func (p Problem) ScaleComm(factor float64) Problem {
	out := p.clone()
	for i := range out.Edges {
		for r, c := range out.Edges[i].Cost {
			out.Edges[i].Cost[r] = c * factor
		}
	}
	return out
}

func (p Problem) clone() Problem {
	out := Problem{
		Tasks:    append([]Task(nil), p.Tasks...),
		Machines: append([]Machine(nil), p.Machines...),
		Exec:     make(map[Task]map[Machine]float64, len(p.Exec)),
	}
	for t, row := range p.Exec {
		cp := make(map[Machine]float64, len(row))
		for m, c := range row {
			cp[m] = c
		}
		out.Exec[t] = cp
	}
	for _, e := range p.Edges {
		cp := make(map[Route]float64, len(e.Cost))
		for r, c := range e.Cost {
			cp[r] = c
		}
		out.Edges = append(out.Edges, Edge{From: e.From, To: e.To, Cost: cp})
	}
	return out
}

// PaperExample returns the paper's §1 problem (Tables 1 and 2): tasks A
// and B on machines M1 and M2.
func PaperExample() Problem {
	return Problem{
		Tasks:    []Task{"A", "B"},
		Machines: []Machine{"M1", "M2"},
		Exec: map[Task]map[Machine]float64{
			"A": {"M1": 12, "M2": 18},
			"B": {"M1": 4, "M2": 30},
		},
		Edges: []Edge{{
			From: "A", To: "B",
			Cost: map[Route]float64{
				{From: "M1", To: "M2"}: 7,
				{From: "M2", To: "M1"}: 8,
			},
		}},
	}
}
