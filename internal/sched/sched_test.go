package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperTable12DedicatedBestIsBothOnM1(t *testing.T) {
	p := PaperExample()
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 16 {
		t.Fatalf("dedicated makespan %v, want 16", best.Makespan)
	}
	if best.Assignment["A"] != "M1" || best.Assignment["B"] != "M1" {
		t.Fatalf("dedicated allocation %v, want both on M1", best.Assignment)
	}
}

func TestPaperTable3ContentionFlipsAllocation(t *testing.T) {
	// M1 time-shared with CPU-bound load: execution on M1 slowed ×3.
	p := PaperExample().ScaleExec("M1", 3)
	if got := p.Exec["A"]["M1"]; got != 36 {
		t.Fatalf("A on M1 = %v, want 36 (Table 3)", got)
	}
	if got := p.Exec["B"]["M1"]; got != 12 {
		t.Fatalf("B on M1 = %v, want 12 (Table 3)", got)
	}
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 38 {
		t.Fatalf("makespan %v, want 38 (A on M2, B on M1: 18+8+12)", best.Makespan)
	}
	if best.Assignment["A"] != "M2" || best.Assignment["B"] != "M1" {
		t.Fatalf("allocation %v, want A→M2 B→M1", best.Assignment)
	}
	// Both-on-M1 would cost 48, 10 units worse, as the paper notes.
	both, err := p.Evaluate(Assignment{"A": "M1", "B": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if both != 48 {
		t.Fatalf("both-on-M1 = %v, want 48", both)
	}
}

func TestPaperTable4CommContentionFlipsBack(t *testing.T) {
	// Computation and communication both slowed ×3 (Tables 3 and 4):
	// the comm penalty outweighs offloading A, so both stay on M1.
	p := PaperExample().ScaleExec("M1", 3).ScaleComm(3)
	if got := p.Edges[0].Cost[Route{From: "M1", To: "M2"}]; got != 21 {
		t.Fatalf("M1→M2 = %v, want 21 (Table 4)", got)
	}
	if got := p.Edges[0].Cost[Route{From: "M2", To: "M1"}]; got != 24 {
		t.Fatalf("M2→M1 = %v, want 24 (Table 4)", got)
	}
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 48 {
		t.Fatalf("makespan %v, want 48 (both on M1)", best.Makespan)
	}
	if best.Assignment["A"] != "M1" || best.Assignment["B"] != "M1" {
		t.Fatalf("allocation %v, want both on M1", best.Assignment)
	}
	// The split allocation now costs 18+24+12 = 54.
	split, err := p.Evaluate(Assignment{"A": "M2", "B": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if split != 54 {
		t.Fatalf("split = %v, want 54", split)
	}
}

func TestRankOrdersAllAssignments(t *testing.T) {
	p := PaperExample()
	ranked, err := p.Rank()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d assignments, want 4", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Makespan < ranked[i-1].Makespan {
			t.Fatalf("rank order violated at %d: %v after %v", i, ranked[i].Makespan, ranked[i-1].Makespan)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := PaperExample()
	if _, err := p.Evaluate(Assignment{"A": "M1"}); err == nil {
		t.Fatal("missing assignment accepted")
	}
	if _, err := p.Evaluate(Assignment{"A": "M1", "B": "M9"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	bad := []Problem{
		{},
		{Tasks: []Task{"A"}},
		{Tasks: []Task{"A"}, Machines: []Machine{"M"}},
		{Tasks: []Task{"A", "A"}, Machines: []Machine{"M"},
			Exec: map[Task]map[Machine]float64{"A": {"M": 1}}},
		{Tasks: []Task{"A"}, Machines: []Machine{"M"},
			Exec: map[Task]map[Machine]float64{"A": {"M": -1}}},
		{Tasks: []Task{"A"}, Machines: []Machine{"M"},
			Exec:  map[Task]map[Machine]float64{"A": {"M": 1}},
			Edges: []Edge{{From: "A", To: "Z"}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d did not error", i)
		}
	}
}

func TestScaleDoesNotMutateOriginal(t *testing.T) {
	p := PaperExample()
	_ = p.ScaleExec("M1", 3)
	_ = p.ScaleComm(3)
	if p.Exec["A"]["M1"] != 12 {
		t.Fatal("ScaleExec mutated the original")
	}
	if p.Edges[0].Cost[Route{From: "M1", To: "M2"}] != 7 {
		t.Fatal("ScaleComm mutated the original")
	}
}

func TestAssignmentStringDeterministic(t *testing.T) {
	a := Assignment{"B": "M1", "A": "M2"}
	if a.String() != "A→M2 B→M1" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestThreeMachineChain(t *testing.T) {
	p := Problem{
		Tasks:    []Task{"T1", "T2", "T3"},
		Machines: []Machine{"M1", "M2", "M3"},
		Exec: map[Task]map[Machine]float64{
			"T1": {"M1": 1, "M2": 10, "M3": 10},
			"T2": {"M1": 10, "M2": 1, "M3": 10},
			"T3": {"M1": 10, "M2": 10, "M3": 1},
		},
		Edges: []Edge{
			{From: "T1", To: "T2", Cost: allRoutes([]Machine{"M1", "M2", "M3"}, 2)},
			{From: "T2", To: "T3", Cost: allRoutes([]Machine{"M1", "M2", "M3"}, 2)},
		},
	}
	best, err := p.Best()
	if err != nil {
		t.Fatal(err)
	}
	// Each task on its fast machine: 3 exec + 2 transfers = 7.
	if best.Makespan != 7 {
		t.Fatalf("makespan %v, want 7", best.Makespan)
	}
}

func allRoutes(ms []Machine, cost float64) map[Route]float64 {
	out := map[Route]float64{}
	for _, a := range ms {
		for _, b := range ms {
			if a != b {
				out[Route{From: a, To: b}] = cost
			}
		}
	}
	return out
}

// Property: Best is never worse than any specific assignment, and
// scaling all exec costs on an unused machine does not change the best
// makespan.
func TestBestIsOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProblem(r)
		ranked, err := p.Rank()
		if err != nil {
			return false
		}
		best := ranked[0].Makespan
		for _, cand := range ranked {
			if cand.Makespan < best-1e-12 {
				return false
			}
		}
		// Direct evaluation agrees.
		got, err := p.Evaluate(ranked[0].Assignment)
		return err == nil && math.Abs(got-best) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling exec on one machine by f ≥ 1 cannot decrease the
// optimal makespan.
func TestScalingMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProblem(r)
		b1, err := p.Best()
		if err != nil {
			return false
		}
		f2 := 1 + r.Float64()*3
		b2, err := p.ScaleExec(p.Machines[0], f2).Best()
		if err != nil {
			return false
		}
		return b2.Makespan >= b1.Makespan-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomProblem(r *rand.Rand) Problem {
	nT := 2 + r.Intn(3)
	nM := 2 + r.Intn(2)
	tasks := make([]Task, nT)
	machines := make([]Machine, nM)
	for i := range tasks {
		tasks[i] = Task(string(rune('A' + i)))
	}
	for i := range machines {
		machines[i] = Machine(string(rune('P' + i)))
	}
	exec := map[Task]map[Machine]float64{}
	for _, t := range tasks {
		row := map[Machine]float64{}
		for _, m := range machines {
			row[m] = 1 + r.Float64()*20
		}
		exec[t] = row
	}
	var edges []Edge
	for i := 0; i+1 < len(tasks); i++ {
		cost := map[Route]float64{}
		for _, a := range machines {
			for _, b := range machines {
				if a != b {
					cost[Route{From: a, To: b}] = r.Float64() * 10
				}
			}
		}
		edges = append(edges, Edge{From: tasks[i], To: tasks[i+1], Cost: cost})
	}
	return Problem{Tasks: tasks, Machines: machines, Exec: exec, Edges: edges}
}

func TestAdjustForLoadReproducesTables34(t *testing.T) {
	p := PaperExample()
	// Table 3: M1 computation slowed ×3, links unaffected.
	adj, err := p.AdjustForLoad(map[Machine]Load{"M1": {Comp: 3, Comm: 1}})
	if err != nil {
		t.Fatal(err)
	}
	best, err := adj.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 38 {
		t.Fatalf("Table-3 makespan %v, want 38", best.Makespan)
	}
	// Table 4: computation and communication both ×3 on M1's side.
	adj, err = p.AdjustForLoad(map[Machine]Load{"M1": {Comp: 3, Comm: 3}})
	if err != nil {
		t.Fatal(err)
	}
	best, err = adj.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan != 48 {
		t.Fatalf("Table-4 makespan %v, want 48", best.Makespan)
	}
}

func TestAdjustForLoadUsesMaxEndpointFactor(t *testing.T) {
	p := PaperExample()
	adj, err := p.AdjustForLoad(map[Machine]Load{
		"M1": {Comp: 1, Comm: 2},
		"M2": {Comp: 1, Comm: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both routes touch M2, so both scale ×5.
	if got := adj.Edges[0].Cost[Route{From: "M1", To: "M2"}]; got != 35 {
		t.Fatalf("M1→M2 = %v, want 35", got)
	}
	if got := adj.Edges[0].Cost[Route{From: "M2", To: "M1"}]; got != 40 {
		t.Fatalf("M2→M1 = %v, want 40", got)
	}
}

func TestAdjustForLoadLeavesOriginalAndValidates(t *testing.T) {
	p := PaperExample()
	if _, err := p.AdjustForLoad(map[Machine]Load{"M1": {Comp: 0.5, Comm: 1}}); err == nil {
		t.Fatal("sub-1 comp factor accepted")
	}
	if _, err := p.AdjustForLoad(map[Machine]Load{"M1": {Comp: 1, Comm: 0}}); err == nil {
		t.Fatal("sub-1 comm factor accepted")
	}
	adj, err := p.AdjustForLoad(map[Machine]Load{"M1": {Comp: 2, Comm: 2}})
	if err != nil {
		t.Fatal(err)
	}
	_ = adj
	if p.Exec["A"]["M1"] != 12 || p.Edges[0].Cost[Route{From: "M1", To: "M2"}] != 7 {
		t.Fatal("AdjustForLoad mutated the original problem")
	}
}

func TestAdjustForLoadEmptyMapIsIdentity(t *testing.T) {
	p := PaperExample()
	adj, err := p.AdjustForLoad(nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := p.Best()
	b2, _ := adj.Best()
	if b1.Makespan != b2.Makespan {
		t.Fatalf("identity adjustment changed makespan %v → %v", b1.Makespan, b2.Makespan)
	}
}
