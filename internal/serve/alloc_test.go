package serve

import (
	"testing"

	"contention/internal/core"
)

// TestWarmPredictorStaysAllocationFree re-asserts the core 0 allocs/op
// contract from inside the serve package: linking the serving layer
// (its metric registrations run at init) must not add allocations to
// the warm direct-call prediction path the daemon's batcher sits on.
func TestWarmPredictorStaysAllocationFree(t *testing.T) {
	p := newTestPredictor(t)
	cs := []core.Contender{
		{CommFraction: 0.25, MsgWords: 600},
		{CommFraction: 0.40, MsgWords: 1500, IOFraction: 0.1},
	}
	sets := []core.DataSet{{N: 400, Words: 512}}
	if _, err := p.PredictComm(core.HostToBack, sets, cs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PredictComp(2, cs); err != nil {
		t.Fatal(err)
	}
	commAllocs := testing.AllocsPerRun(200, func() {
		if _, err := p.PredictComm(core.HostToBack, sets, cs); err != nil {
			t.Fatal(err)
		}
	})
	if commAllocs != 0 {
		t.Fatalf("warm PredictComm allocates %.1f objects/op with serve linked, want 0", commAllocs)
	}
	compAllocs := testing.AllocsPerRun(200, func() {
		if _, err := p.PredictComp(2, cs); err != nil {
			t.Fatal(err)
		}
	})
	if compAllocs != 0 {
		t.Fatalf("warm PredictComp allocates %.1f objects/op with serve linked, want 0", compAllocs)
	}
}
