// Binary wire fast path. JSON decode dominates the per-request cost
// once the model answer itself is a surface lookup, so the daemon
// negotiates a hand-decoded length-prefixed format beside JSON via
// Content-Type. The decoder extracts fields straight out of one pooled
// read buffer into a pooled request struct (no reflection, no
// intermediate strings), and responses are encoded into a pooled
// buffer — steady-state binary requests allocate nothing in this file.
//
// Request payload (all integers little-endian):
//
//	u32  payload length (bytes after this prefix; capped at MaxBodyBytes)
//	u8   version (= 1)
//	u8   kind    (1 = comm, 2 = comp)
//	u8   flags   (comm: bit0 = direction, 0 to_back / 1 to_host;
//	              comp: bit0 = explicit j present;
//	              both: bit7 = trace block present)
//	u8   contender count
//	flags bit7: trace block — u64 trace id, u64 parent span id,
//	            u8 trace flags (bit0 = sampled)
//	kind comm: u16 data-set count, then count × (u32 n, u32 words)
//	kind comp: f64 dcomp, then u32 j if flags bit0
//	contender count × (f64 comm_fraction, f64 io_fraction, u32 msg_words)
//
// The trace block carries the same obs.TraceContext the HTTP trace
// header does, in-band so a binary client needs no extra header pass;
// servers that predate the flag reject it as unknown (fail-closed), and
// servers that know it accept requests without it unchanged.
//
// The payload length must match the content exactly; truncation,
// trailing bytes, NaN/Inf fractions, and out-of-range counts are all
// typed 4xx RequestErrors — never a panic (FuzzDecodeBinaryRequest).
//
// Response payload:
//
//	u32  payload length
//	u8   version (= 1)
//	u8   flags   (bit0 degraded, bit1 fast)
//	u16  reason length
//	f64  value
//	u32  batch size
//	reason bytes
//
// Pipeline errors (4xx/5xx) are answered as the usual JSON error
// envelope with the HTTP status carrying the verdict, so binary
// clients need no second error format on the hot path.
package serve

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"

	"contention/internal/core"
	"contention/internal/obs"
)

// ContentTypeBinary selects the binary request/response format on
// POST /v1/predict.
const ContentTypeBinary = "application/x-contention-predict"

const (
	binVersion = 1

	binKindComm = 1
	binKindComp = 2

	binFlagDirToHost = 1    // comm: direction is back→host
	binFlagHasJ      = 1    // comp: explicit j column follows dcomp
	binFlagTrace     = 0x80 // both kinds: trace block follows the header

	binRespDegraded = 1
	binRespFast     = 2

	binContenderBytes = 20 // f64 + f64 + u32
	binDataSetBytes   = 8  // u32 + u32
	binTraceBytes     = 17 // u64 trace id + u64 span id + u8 flags
)

// binReq is the pooled per-request workspace: the raw payload buffer,
// fixed backing arrays the decoded query slices point into, and the
// response encode buffer. It must not be recycled while anything still
// references those slices — the batcher slow path clones them first.
type binReq struct {
	q    query
	tc   obs.TraceContext // in-band trace block, zero when absent
	cs   [MaxContenders]core.Contender
	sets [MaxDataSets]core.DataSet
	buf  []byte
	out  []byte
	// hdr/probe live here rather than on readBody's stack: passing a
	// stack array through the io.Reader interface makes it escape, and
	// the pooled struct is already heap-resident.
	hdr   [4]byte
	probe [1]byte
}

var binReqPool = sync.Pool{New: func() any { return new(binReq) }}

// readBody reads one length-prefixed payload into br.buf, enforcing the
// size cap and exact framing.
func (br *binReq) readBody(body io.Reader) error {
	if _, err := io.ReadFull(body, br.hdr[:]); err != nil {
		return badRequest("binary request: missing length prefix: %v", err)
	}
	n := binary.LittleEndian.Uint32(br.hdr[:])
	if n > MaxBodyBytes {
		return badRequest("binary payload %d exceeds %d bytes", n, MaxBodyBytes)
	}
	if cap(br.buf) < int(n) {
		br.buf = make([]byte, n)
	} else {
		br.buf = br.buf[:n]
	}
	if _, err := io.ReadFull(body, br.buf); err != nil {
		return badRequest("binary payload truncated: declared %d bytes: %v", n, err)
	}
	if m, _ := body.Read(br.probe[:]); m != 0 {
		return badRequest("trailing data after binary payload")
	}
	return nil
}

// decode parses br.buf into br.q, applying the same validation the JSON
// path applies. The query's slices alias br's backing arrays.
func (br *binReq) decode() error {
	b := br.buf
	if len(b) < 4 {
		return badRequest("binary request too short (%d payload bytes)", len(b))
	}
	version, kind, flags, nc := b[0], b[1], b[2], int(b[3])
	b = b[4:]
	if version != binVersion {
		return badRequest("unsupported binary version %d (want %d)", version, binVersion)
	}
	q := &br.q
	*q = query{}
	br.tc = obs.TraceContext{}
	// The trace block is kind-independent, so it is parsed (and its flag
	// bit cleared) before the kind-specific flag checks.
	if flags&binFlagTrace != 0 {
		if len(b) < binTraceBytes {
			return badRequest("binary trace block truncated (%d of %d bytes)", len(b), binTraceBytes)
		}
		// A zero trace id or unknown trace-flag bits can never come from
		// our encoder; reject rather than guess (keeps decode→re-encode
		// exact, the fuzz round-trip property).
		if b[16]&^1 != 0 {
			return badRequest("unknown trace flags %#x", b[16])
		}
		br.tc = obs.TraceContext{
			TraceID: binary.LittleEndian.Uint64(b),
			SpanID:  binary.LittleEndian.Uint64(b[8:]),
			Sampled: b[16]&1 != 0,
		}
		if !br.tc.Valid() {
			return badRequest("binary trace block with zero trace id")
		}
		b = b[binTraceBytes:]
		flags &^= binFlagTrace
	}
	switch kind {
	case binKindComm:
		q.kind = "comm"
		if flags&^byte(binFlagDirToHost) != 0 {
			return badRequest("unknown comm flags %#x", flags)
		}
		if flags&binFlagDirToHost != 0 {
			q.dir = core.BackToHost
		} else {
			q.dir = core.HostToBack
		}
		if len(b) < 2 {
			return badRequest("binary comm query: truncated data-set count")
		}
		ns := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if ns == 0 {
			return badRequest("comm query needs at least one data set")
		}
		if ns > MaxDataSets {
			return badRequest("too many data sets (%d > %d)", ns, MaxDataSets)
		}
		if len(b) < ns*binDataSetBytes {
			return badRequest("binary comm query: truncated data sets (%d of %d declared)",
				len(b)/binDataSetBytes, ns)
		}
		sets := br.sets[:ns]
		for i := range sets {
			sets[i] = core.DataSet{
				N:     int(binary.LittleEndian.Uint32(b)),
				Words: int(binary.LittleEndian.Uint32(b[4:])),
			}
			b = b[binDataSetBytes:]
		}
		q.sets = sets
	case binKindComp:
		q.kind = "comp"
		if flags&^byte(binFlagHasJ) != 0 {
			return badRequest("unknown comp flags %#x", flags)
		}
		if len(b) < 8 {
			return badRequest("binary comp query: truncated dcomp")
		}
		d := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return badRequest("dcomp %v must be finite and non-negative", d)
		}
		q.dcomp = d
		if flags&binFlagHasJ != 0 {
			if len(b) < 4 {
				return badRequest("binary comp query: truncated j")
			}
			q.j = int(binary.LittleEndian.Uint32(b))
			q.hasJ = true
			b = b[4:]
		}
	default:
		return badRequest("unknown binary kind %d", kind)
	}
	if nc > MaxContenders {
		return badRequest("too many contenders (%d > %d)", nc, MaxContenders)
	}
	if len(b) != nc*binContenderBytes {
		return badRequest("binary contender block is %d bytes, want %d for %d contenders",
			len(b), nc*binContenderBytes, nc)
	}
	cs := br.cs[:nc]
	for i := range cs {
		ct := core.Contender{
			CommFraction: math.Float64frombits(binary.LittleEndian.Uint64(b)),
			IOFraction:   math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
			MsgWords:     int(binary.LittleEndian.Uint32(b[16:])),
		}
		if err := ct.Validate(); err != nil {
			return badRequest("contenders[%d]: %v", i, err)
		}
		cs[i] = ct
		b = b[binContenderBytes:]
	}
	q.cs = cs
	return nil
}

// appendBinaryQuery encodes a validated query in the request format,
// with an in-band trace block when tc names a trace.
func appendBinaryQuery(dst []byte, q query, tc obs.TraceContext) []byte {
	payload := 4 + len(q.cs)*binContenderBytes
	var flags byte
	if tc.Valid() {
		payload += binTraceBytes
		flags |= binFlagTrace
	}
	if q.kind == "comm" {
		payload += 2 + len(q.sets)*binDataSetBytes
		if q.dir == core.BackToHost {
			flags |= binFlagDirToHost
		}
	} else {
		payload += 8
		if q.hasJ {
			payload += 4
			flags |= binFlagHasJ
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	kind := byte(binKindComp)
	if q.kind == "comm" {
		kind = binKindComm
	}
	dst = append(dst, binVersion, kind, flags, byte(len(q.cs)))
	if tc.Valid() {
		dst = binary.LittleEndian.AppendUint64(dst, tc.TraceID)
		dst = binary.LittleEndian.AppendUint64(dst, tc.SpanID)
		var tf byte
		if tc.Sampled {
			tf = 1
		}
		dst = append(dst, tf)
	}
	if q.kind == "comm" {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.sets)))
		for _, s := range q.sets {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(s.N))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Words))
		}
	} else {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(q.dcomp))
		if q.hasJ {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(q.j))
		}
	}
	for _, c := range q.cs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.CommFraction))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.IOFraction))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.MsgWords))
	}
	return dst
}

// AppendBinaryRequest validates req and appends its binary encoding to
// dst — the client-side counterpart of the server's binary decoder
// (used by cmd/loadgen and the round-trip tests). The contender count
// after P-replication must fit the wire format's one-byte field (it
// does: MaxContenders is 64).
func AppendBinaryRequest(dst []byte, req *Request) ([]byte, error) {
	q, err := req.validate()
	if err != nil {
		return nil, err
	}
	return appendBinaryQuery(dst, q, obs.TraceContext{}), nil
}

// AppendBinaryRequestTraced is AppendBinaryRequest with an in-band
// trace block, so binary clients propagate trace context without an
// extra header pass. A zero tc encodes identically to
// AppendBinaryRequest.
func AppendBinaryRequestTraced(dst []byte, req *Request, tc obs.TraceContext) ([]byte, error) {
	q, err := req.validate()
	if err != nil {
		return nil, err
	}
	return appendBinaryQuery(dst, q, tc), nil
}

// appendBinaryResponse encodes one response in the response format.
func appendBinaryResponse(dst []byte, resp Response) []byte {
	reason := resp.Reason
	if len(reason) > math.MaxUint16 {
		reason = reason[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(16+len(reason)))
	var flags byte
	if resp.Degraded {
		flags |= binRespDegraded
	}
	if resp.Fast {
		flags |= binRespFast
	}
	dst = append(dst, binVersion, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(reason)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.Value))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Batch))
	return append(dst, reason...)
}

// ErrBinaryResponse reports a malformed binary response payload.
var ErrBinaryResponse = errors.New("serve: malformed binary response")

// DecodeBinaryResponse parses one length-prefixed binary response.
func DecodeBinaryResponse(b []byte) (Response, error) {
	if len(b) < 4 {
		return Response{}, ErrBinaryResponse
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != n || n < 16 {
		return Response{}, ErrBinaryResponse
	}
	if b[0] != binVersion {
		return Response{}, ErrBinaryResponse
	}
	flags := b[1]
	reasonLen := int(binary.LittleEndian.Uint16(b[2:]))
	if n != 16+reasonLen {
		return Response{}, ErrBinaryResponse
	}
	return Response{
		Value:    math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		Batch:    int(binary.LittleEndian.Uint32(b[12:])),
		Degraded: flags&binRespDegraded != 0,
		Fast:     flags&binRespFast != 0,
		Reason:   string(b[16:]),
	}, nil
}
