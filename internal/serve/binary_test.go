package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"contention/internal/core"
	"contention/internal/surface"
)

// encodeReq is a test helper: AppendBinaryRequest or die.
func encodeReq(t *testing.T, req *Request) []byte {
	t.Helper()
	b, err := AppendBinaryRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendBinaryRequest: %v", err)
	}
	return b
}

// TestBinaryRoundTrip proves the binary path is a pure transport: for a
// randomized corpus, a binary-encoded request answered by the server
// yields bit-for-bit the same value as the JSON path and the direct
// predictor call.
func TestBinaryRoundTrip(t *testing.T) {
	pred, err := core.NewPredictor(SyntheticCalibration())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pred: pred, Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		req := randomWireRequest(rng)
		body := encodeReq(t, req)
		hr, err := http.Post(ts.URL+"/v1/predict", ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("binary request %d: status %d: %s", i, hr.StatusCode, raw)
		}
		if ct := hr.Header.Get("Content-Type"); ct != ContentTypeBinary {
			t.Fatalf("response content type %q, want %q", ct, ContentTypeBinary)
		}
		resp, err := DecodeBinaryResponse(raw)
		if err != nil {
			t.Fatalf("DecodeBinaryResponse: %v (payload %x)", err, raw)
		}

		q, err := req.validate()
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		switch {
		case q.kind == "comm":
			want, err = pred.PredictComm(q.dir, q.sets, q.cs)
		case q.hasJ:
			want, err = pred.PredictCompWithJ(q.dcomp, q.cs, q.j)
		default:
			want, err = pred.PredictComp(q.dcomp, q.cs)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.Value != want {
			t.Fatalf("binary answer %v != direct %v for %+v", resp.Value, want, req)
		}
	}
}

// randomRequest builds a valid randomized wire request (shared with the
// round-trip and fast-path differentials).
func randomWireRequest(rng *rand.Rand) *Request {
	cs := make([]ContenderSpec, 1+rng.Intn(5))
	f := math.Round(rng.Float64()*80) / 100
	for i := range cs {
		spec := ContenderSpec{CommFraction: f, MsgWords: rng.Intn(1500)}
		if rng.Intn(2) == 0 { // heterogeneous half
			spec.CommFraction = math.Round(rng.Float64()*80) / 100
			if rng.Intn(3) == 0 {
				spec.IOFraction = math.Round(rng.Float64()*(1-spec.CommFraction)*50) / 100
			}
		}
		cs[i] = spec
	}
	if rng.Intn(2) == 0 {
		sets := make([]DataSetSpec, 1+rng.Intn(3))
		for i := range sets {
			sets[i] = DataSetSpec{N: 1 + rng.Intn(50), Words: rng.Intn(4000)}
		}
		dir := "to_back"
		if rng.Intn(2) == 0 {
			dir = "to_host"
		}
		return &Request{Kind: "comm", Dir: dir, Sets: sets, Contenders: cs}
	}
	d := rng.Float64() * 10
	req := &Request{Kind: "comp", Dcomp: &d, Contenders: cs}
	if rng.Intn(2) == 0 {
		j := rng.Intn(1200)
		req.J = &j
	}
	return req
}

// TestFastPathDifferential exercises the batcher bypass with a surface
// attached: homogeneous dyadic-fraction requests must come back Fast
// and bit-exact against the direct predictor; every answer (fast or
// batched) must stay within the interpolation bound.
func TestFastPathDifferential(t *testing.T) {
	cal := SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	surf, err := surface.Build(cal.Tables, surface.Config{MaxContenders: 16, GridCells: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.AttachSurface(surf); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pred: pred, Window: -1, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(11))
	fastSeen := 0
	for i := 0; i < 500; i++ {
		req := randomWireRequest(rng)
		body := encodeReq(t, req)
		hr, err := http.Post(ts.URL+"/v1/predict", ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil || hr.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d err %v", i, hr.StatusCode, err)
		}
		resp, err := DecodeBinaryResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		q, err := req.validate()
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		switch {
		case q.kind == "comm":
			want, err = pred.PredictComm(q.dir, q.sets, q.cs)
		case q.hasJ:
			want, err = pred.PredictCompWithJ(q.dcomp, q.cs, q.j)
		default:
			want, err = pred.PredictComp(q.dcomp, q.cs)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.Fast {
			fastSeen++
			// Dyadic corpus fractions (k/100 is not dyadic in general, but
			// the direct predictor warms the cache, so exactness at grid
			// nodes is checked by the surface differential; here the pinned
			// bound is the contract).
			if rel := math.Abs(resp.Value-want) / want; rel > 1e-3 {
				t.Fatalf("fast answer %v vs direct %v: rel error %.3g > 1e-3", resp.Value, want, rel)
			}
		} else if resp.Value != want {
			t.Fatalf("batched answer %v != direct %v", resp.Value, want)
		}
	}
	if fastSeen == 0 {
		t.Fatal("no request took the fast path — bypass never engaged")
	}
}

// TestBinaryDecodeAllocationFree pins the pooled binary decode + encode
// cycle at zero steady-state allocations.
func TestBinaryDecodeAllocationFree(t *testing.T) {
	d := 2.5
	j := 500
	req := &Request{Kind: "comp", Dcomp: &d, J: &j,
		Contenders: []ContenderSpec{{CommFraction: 0.25, MsgWords: 500}, {CommFraction: 0.25, MsgWords: 500}}}
	payload, err := AppendBinaryRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	br := new(binReq)
	rd := bytes.NewReader(payload)
	resp := Response{Value: 3.25, Batch: 1, Fast: true}
	if allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		if err := br.readBody(rd); err != nil {
			t.Fatal(err)
		}
		if err := br.decode(); err != nil {
			t.Fatal(err)
		}
		br.out = appendBinaryResponse(br.out[:0], resp)
	}); allocs != 0 {
		t.Fatalf("binary decode/encode allocates %.1f allocs/op, want 0", allocs)
	}
}

// FuzzDecodeBinaryRequest fuzzes the binary wire decoder: malformed
// length prefixes, truncation, flipped flags, NaN/Inf payloads, and
// arbitrary garbage must fail with a typed 4xx *RequestError — never a
// panic, never a 5xx classification, and a successful decode must yield
// a query the model-side validators accept.
func FuzzDecodeBinaryRequest(f *testing.F) {
	valid := func(req *Request) []byte {
		b, err := AppendBinaryRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	d, j, p := 2.5, 500, 3
	comp := valid(&Request{Kind: "comp", Dcomp: &d, J: &j, P: &p,
		Contenders: []ContenderSpec{{CommFraction: 0.25, MsgWords: 500}}})
	comm := valid(&Request{Kind: "comm", Dir: "to_host",
		Sets:       []DataSetSpec{{N: 10, Words: 100}, {N: 1, Words: 4000}},
		Contenders: []ContenderSpec{{CommFraction: 0.5, MsgWords: 80, IOFraction: 0.25}}})
	seeds := [][]byte{
		comp,
		comm,
		comp[:4],                 // header only
		comp[:len(comp)-1],       // truncated payload
		append(comp, 0xff),       // trailing byte
		{},                       // empty
		{0xff, 0xff, 0xff, 0xff}, // absurd length prefix
		{4, 0, 0, 0, binVersion, binKindComp, 0, 0},    // comp with no dcomp
		{4, 0, 0, 0, 9, binKindComp, 0, 0},             // bad version
		{4, 0, 0, 0, binVersion, 7, 0, 0},              // unknown kind
		{4, 0, 0, 0, binVersion, binKindComm, 0xfe, 0}, // junk flags
	}
	// NaN dcomp and NaN comm fraction payloads.
	nanComp := append([]byte(nil), comp...)
	binary.LittleEndian.PutUint64(nanComp[8:], math.Float64bits(math.NaN()))
	seeds = append(seeds, nanComp)
	infFrac := append([]byte(nil), comp...)
	binary.LittleEndian.PutUint64(infFrac[len(infFrac)-binContenderBytes:], math.Float64bits(math.Inf(1)))
	seeds = append(seeds, infFrac)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := new(binReq)
		if err := br.readBody(bytes.NewReader(data)); err != nil {
			requireRequestError(t, err, string(data))
			return
		}
		if err := br.decode(); err != nil {
			requireRequestError(t, err, string(data))
			return
		}
		// A decode the binary path accepts must also be a query the
		// model-side validators accept: re-encode and revalidate.
		q := br.q
		for _, c := range q.cs {
			if err := c.Validate(); err != nil {
				t.Fatalf("decoded contender fails validation: %v", err)
			}
		}
		if q.kind == "comp" && (math.IsNaN(q.dcomp) || math.IsInf(q.dcomp, 0) || q.dcomp < 0) {
			t.Fatalf("decoded dcomp %v escaped validation", q.dcomp)
		}
		reenc := appendBinaryQuery(nil, q, br.tc)
		if !bytes.Equal(reenc, data) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data)
		}
	})
}

// TestBinaryErrorStatuses spot-checks the HTTP mapping for binary-path
// failures: malformed payloads are 400 with the JSON error envelope.
func TestBinaryErrorStatuses(t *testing.T) {
	pred, err := core.NewPredictor(SyntheticCalibration())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pred: pred, Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff},
		{4, 0, 0, 0, binVersion, 7, 0, 0},
	} {
		hr, err := http.Post(ts.URL+"/v1/predict", ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %x: status %d, want 400 (%s)", body, hr.StatusCode, raw)
		}
		if !strings.Contains(hr.Header.Get("Content-Type"), "application/json") {
			t.Fatalf("error response content type %q, want JSON envelope", hr.Header.Get("Content-Type"))
		}
	}
}
