package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	"contention/internal/core"
)

// Payload bounds: the decoder is the daemon's outermost trust boundary,
// so every dimension of a request is capped before any model code runs.
const (
	// MaxBodyBytes bounds the request body.
	MaxBodyBytes = 1 << 20
	// MaxContenders bounds the contender set (after replication by P).
	MaxContenders = 64
	// MaxDataSets bounds the data-set list of a comm query.
	MaxDataSets = 256
)

// RequestError is a client-side fault: the request could not be decoded
// or validated. Status is always in the 4xx range.
type RequestError struct {
	Status int
	Msg    string
}

// Error implements error.
func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// ContenderSpec is the wire form of one contending application.
type ContenderSpec struct {
	CommFraction float64 `json:"comm_fraction"`
	MsgWords     int     `json:"msg_words"`
	IOFraction   float64 `json:"io_fraction,omitempty"`
}

// DataSetSpec is the wire form of one message group.
type DataSetSpec struct {
	N     int `json:"n"`
	Words int `json:"words"`
}

// Request is the wire form of one prediction query.
//
//   - kind "comm": slowdown-adjusted communication cost for Sets
//     transferred in direction Dir under Contenders.
//   - kind "comp": slowdown-adjusted computation cost for Dcomp
//     dedicated seconds under Contenders; J forces a delay^{i,j} column
//     (omitted: the paper's auto rule, maximum contender message size).
//
// P, when set with a single contender spec, replicates that spec P
// times — the "p identical contenders" shorthand the paper's sweeps
// use.
type Request struct {
	Kind       string          `json:"kind"`
	Dir        string          `json:"dir,omitempty"`
	Sets       []DataSetSpec   `json:"sets,omitempty"`
	Dcomp      *float64        `json:"dcomp,omitempty"`
	J          *int            `json:"j,omitempty"`
	P          *int            `json:"p,omitempty"`
	Contenders []ContenderSpec `json:"contenders"`
}

// Response is the wire form of one prediction answer.
type Response struct {
	Value float64 `json:"value"`
	// Degraded marks a conservative p+1 fallback answer; Reason says why.
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Batch is the size of the micro-batch this answer was computed in
	// (0 for answers that bypassed the batcher, e.g. degraded mode).
	Batch int `json:"batch,omitempty"`
	// Fast marks an answer served by the batcher-bypass fast path (a
	// precomputed-surface or memo-cache lookup, no DP, no batching).
	Fast bool `json:"fast,omitempty"`
}

// errorBody is the JSON error envelope. RequestID echoes the caller's
// X-Request-Id (or a server-minted one) so a failure in a chaos-gate
// log can be correlated with its trace and with the router's records.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// query is a decoded, validated request in model-core types.
type query struct {
	kind  string // "comm" or "comp"
	dir   core.Direction
	sets  []core.DataSet
	dcomp float64
	j     int
	hasJ  bool
	cs    []core.Contender
}

// DecodeRequest reads and validates one prediction request. All
// failures are *RequestError (4xx): the decoder must never panic and
// never let NaN/Inf, negative counts, or oversized payloads reach the
// model core.
func DecodeRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("malformed request: %v", err)
	}
	// A second value on the stream (or trailing garbage) is malformed.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("trailing data after request body")
	}
	return &req, nil
}

// validate converts the wire request into model-core types, rejecting
// anything the model would choke on.
func (req *Request) validate() (query, error) {
	var q query
	switch req.Kind {
	case "comm", "comp":
		q.kind = req.Kind
	case "":
		return q, badRequest("missing kind (want \"comm\" or \"comp\")")
	default:
		return q, badRequest("unknown kind %q (want \"comm\" or \"comp\")", req.Kind)
	}

	cs, err := req.contenders()
	if err != nil {
		return q, err
	}
	q.cs = cs

	switch q.kind {
	case "comm":
		if req.Dcomp != nil || req.J != nil {
			return q, badRequest("comm query does not take dcomp or j")
		}
		switch strings.ToLower(req.Dir) {
		case "to_back", "to-back", "host_to_back":
			q.dir = core.HostToBack
		case "to_host", "to-host", "back_to_host":
			q.dir = core.BackToHost
		case "":
			return q, badRequest("comm query missing dir (want \"to_back\" or \"to_host\")")
		default:
			return q, badRequest("unknown dir %q (want \"to_back\" or \"to_host\")", req.Dir)
		}
		if len(req.Sets) == 0 {
			return q, badRequest("comm query needs at least one data set")
		}
		if len(req.Sets) > MaxDataSets {
			return q, badRequest("too many data sets (%d > %d)", len(req.Sets), MaxDataSets)
		}
		q.sets = make([]core.DataSet, len(req.Sets))
		for i, s := range req.Sets {
			d := core.DataSet{N: s.N, Words: s.Words}
			if err := d.Validate(); err != nil {
				return q, badRequest("sets[%d]: %v", i, err)
			}
			q.sets[i] = d
		}
	case "comp":
		if req.Dir != "" || len(req.Sets) > 0 {
			return q, badRequest("comp query does not take dir or sets")
		}
		if req.Dcomp == nil {
			return q, badRequest("comp query missing dcomp")
		}
		d := *req.Dcomp
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return q, badRequest("dcomp %v must be finite and non-negative", d)
		}
		q.dcomp = d
		if req.J != nil {
			if *req.J < 0 {
				return q, badRequest("j %d must be non-negative", *req.J)
			}
			q.j, q.hasJ = *req.J, true
		}
	}
	return q, nil
}

// contenders expands and validates the contender list.
func (req *Request) contenders() ([]core.Contender, error) {
	specs := req.Contenders
	if req.P != nil {
		p := *req.P
		if p < 0 {
			return nil, badRequest("p %d must be non-negative", p)
		}
		if p > MaxContenders {
			return nil, badRequest("p %d exceeds the %d-contender limit", p, MaxContenders)
		}
		if len(specs) != 1 {
			return nil, badRequest("p requires exactly one contender spec to replicate (got %d)", len(specs))
		}
		rep := make([]ContenderSpec, p)
		for i := range rep {
			rep[i] = specs[0]
		}
		specs = rep
	}
	if len(specs) > MaxContenders {
		return nil, badRequest("too many contenders (%d > %d)", len(specs), MaxContenders)
	}
	cs := make([]core.Contender, len(specs))
	for i, c := range specs {
		ct := core.Contender{CommFraction: c.CommFraction, MsgWords: c.MsgWords, IOFraction: c.IOFraction}
		if err := ct.Validate(); err != nil {
			return nil, badRequest("contenders[%d]: %v", i, err)
		}
		cs[i] = ct
	}
	return cs, nil
}

// BatchKey validates the request and returns its canonical affinity
// key: the (kind, direction, explicit-j, contender-multiset) string
// under which the server micro-batches it. Two requests with equal keys
// are answered by one batched predictor call, so a router that keeps
// equal keys on one replica preserves batching efficiency instead of
// diluting it across the fleet. Failures are the same *RequestError the
// serving path would return.
func (req *Request) BatchKey() (string, error) {
	q, err := req.validate()
	if err != nil {
		return "", err
	}
	return batchKey(q), nil
}

// statusFor maps an error from the serving pipeline to an HTTP status:
// request faults keep their 4xx, admission rejections map to 429/504,
// and model-side failures (a calibration that cannot answer) are 422 —
// the request was well-formed, this calibration just cannot price it.
func statusFor(err error) int {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		return reqErr.Status
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}
