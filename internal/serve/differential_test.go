package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"contention/internal/core"
	"contention/internal/runner"
)

// corpusMix is one reusable contender mix; the corpus draws from a
// small pool of mixes so concurrent requests actually share batch keys
// (the production traffic shape micro-batching exists for).
type corpusMix struct {
	specs []ContenderSpec
	cs    []core.Contender
}

// newCorpus builds nMix random contender mixes from a seeded RNG.
func newCorpus(rng *rand.Rand, nMix int) []corpusMix {
	mixes := make([]corpusMix, nMix)
	for m := range mixes {
		n := rng.Intn(6) // 0..5 contenders
		specs := make([]ContenderSpec, n)
		cs := make([]core.Contender, n)
		for i := 0; i < n; i++ {
			comm := math.Round(rng.Float64()*0.8*100) / 100
			var io float64
			if rng.Intn(3) == 0 {
				io = math.Round(rng.Float64()*(1-comm)*100) / 100
			}
			words := rng.Intn(2000)
			specs[i] = ContenderSpec{CommFraction: comm, MsgWords: words, IOFraction: io}
			cs[i] = core.Contender{CommFraction: comm, MsgWords: words, IOFraction: io}
		}
		mixes[m] = corpusMix{specs: specs, cs: cs}
	}
	return mixes
}

// corpusRequest is one randomized request plus the direct-call answer
// function evaluated against a reference predictor.
type corpusRequest struct {
	body   string
	direct func(p *core.Predictor) (float64, error)
}

// randomRequest draws one request from the corpus.
func randomRequest(rng *rand.Rand, mixes []corpusMix) corpusRequest {
	mix := mixes[rng.Intn(len(mixes))]
	wire, _ := json.Marshal(mix.specs)
	if rng.Intn(2) == 0 { // comm
		dirName, dir := "to_back", core.HostToBack
		if rng.Intn(2) == 0 {
			dirName, dir = "to_host", core.BackToHost
		}
		nSets := 1 + rng.Intn(3)
		sets := make([]core.DataSet, nSets)
		specs := make([]DataSetSpec, nSets)
		for i := range sets {
			n, words := 1+rng.Intn(50), rng.Intn(4000)
			sets[i] = core.DataSet{N: n, Words: words}
			specs[i] = DataSetSpec{N: n, Words: words}
		}
		setsWire, _ := json.Marshal(specs)
		return corpusRequest{
			body: fmt.Sprintf(`{"kind":"comm","dir":%q,"sets":%s,"contenders":%s}`, dirName, setsWire, wire),
			direct: func(p *core.Predictor) (float64, error) {
				return p.PredictComm(dir, sets, mix.cs)
			},
		}
	}
	dcomp := math.Round(rng.Float64()*1e4*1e6) / 1e6
	if rng.Intn(4) == 0 { // explicit j
		j := rng.Intn(1500)
		return corpusRequest{
			body: fmt.Sprintf(`{"kind":"comp","dcomp":%v,"j":%d,"contenders":%s}`, dcomp, j, wire),
			direct: func(p *core.Predictor) (float64, error) {
				return p.PredictCompWithJ(dcomp, mix.cs, j)
			},
		}
	}
	return corpusRequest{
		body: fmt.Sprintf(`{"kind":"comp","dcomp":%v,"contenders":%s}`, dcomp, wire),
		direct: func(p *core.Predictor) (float64, error) {
			return p.PredictComp(dcomp, mix.cs)
		},
	}
}

// TestDifferentialServedEqualsDirect proves batching does not change
// answers: every served prediction over a 10k randomized request corpus
// is bit-for-bit identical to a direct in-process Predictor call made
// against an independent predictor built from the same calibration.
func TestDifferentialServedEqualsDirect(t *testing.T) {
	const (
		corpusSize  = 10_000
		concurrency = 64
	)
	served := newTestPredictor(t)
	reference := newTestPredictor(t) // independent instance: serving must not perturb it
	s, err := New(Config{
		Pred:   served,
		Pool:   runner.New(0),
		Window: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = concurrency

	rng := rand.New(rand.NewSource(5))
	mixes := newCorpus(rng, 24)
	reqs := make([]corpusRequest, corpusSize)
	for i := range reqs {
		reqs[i] = randomRequest(rng, mixes)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		mismatch []string
		fails    []string
		batched  int64
	)
	work := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req := reqs[i]
				resp, err := client.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(req.body))
				if err != nil {
					mu.Lock()
					fails = append(fails, fmt.Sprintf("request %d: %v", i, err))
					mu.Unlock()
					continue
				}
				var out Response
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if decodeErr != nil || resp.StatusCode != http.StatusOK {
					mu.Lock()
					fails = append(fails, fmt.Sprintf("request %d: status %d decode %v", i, resp.StatusCode, decodeErr))
					mu.Unlock()
					continue
				}
				want, err := req.direct(reference)
				if err != nil {
					mu.Lock()
					fails = append(fails, fmt.Sprintf("request %d direct: %v", i, err))
					mu.Unlock()
					continue
				}
				if math.Float64bits(out.Value) != math.Float64bits(want) {
					mu.Lock()
					mismatch = append(mismatch, fmt.Sprintf("request %d: served %x direct %x (%v vs %v)\n  body %s",
						i, math.Float64bits(out.Value), math.Float64bits(want), out.Value, want, req.body))
					mu.Unlock()
				}
				if out.Batch > 1 {
					mu.Lock()
					batched++
					mu.Unlock()
				}
			}
		}()
	}
	for i := range reqs {
		work <- i
	}
	close(work)
	wg.Wait()

	if len(fails) > 0 {
		t.Fatalf("%d requests failed; first: %s", len(fails), fails[0])
	}
	if len(mismatch) > 0 {
		t.Fatalf("%d/%d served != direct; first: %s", len(mismatch), corpusSize, mismatch[0])
	}
	if batched == 0 {
		t.Fatal("corpus never exercised a multi-request batch — differential test lost its point")
	}
	t.Logf("%d requests bit-identical to direct calls; %d answered in multi-request batches", corpusSize, batched)
}

// TestDifferentialDegradedEqualsRobust is the degraded-mode analogue:
// with the calibration marked stale, served answers must equal the
// direct PredictCommRobust/PredictCompRobust fallback bit-for-bit.
func TestDifferentialDegradedEqualsRobust(t *testing.T) {
	served := newTestPredictor(t)
	reference := newTestPredictor(t)
	served.MarkStale("drift detected (test)")
	reference.MarkStale("drift detected (test)")
	s, err := New(Config{Pred: served, Window: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(11))
	mixes := newCorpus(rng, 8)
	for i := 0; i < 500; i++ {
		req := randomRequest(rng, mixes)
		code, out := post(t, ts.Client(), ts.URL+"/v1/predict", req.body)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, code, out)
		}
		if out["degraded"] != true {
			t.Fatalf("request %d: not degraded: %v", i, out)
		}
	}
	// Spot-check exact worst-case values through the typed path.
	cs := mixes[1].cs
	q := query{kind: "comp", dcomp: 3.25, cs: cs}
	resp, err := s.Predict(t.Context(), q)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	direct, err := reference.PredictCompRobust(3.25, cs)
	if err != nil {
		t.Fatalf("direct robust: %v", err)
	}
	if math.Float64bits(resp.Value) != math.Float64bits(direct.Value) {
		t.Fatalf("degraded served %v != robust %v", resp.Value, direct.Value)
	}
}
