package serve

import "contention/internal/core"

// DecodeBinaryRequest parses one length-prefixed binary request payload
// (the AppendBinaryRequest encoding) back into its wire Request form —
// the read-side counterpart replay drivers use to interpret trace
// bytes. All faults are *RequestError, exactly like the server's own
// decoder; any in-band trace block is validated and dropped.
func DecodeBinaryRequest(b []byte) (*Request, error) {
	br := binReqPool.Get().(*binReq)
	defer binReqPool.Put(br)
	if len(b) < 4 {
		return nil, badRequest("binary request: missing length prefix")
	}
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n > MaxBodyBytes {
		return nil, badRequest("binary payload %d exceeds %d bytes", n, MaxBodyBytes)
	}
	if len(b)-4 != n {
		return nil, badRequest("binary payload is %d bytes, declared %d", len(b)-4, n)
	}
	if cap(br.buf) < n {
		br.buf = make([]byte, n)
	} else {
		br.buf = br.buf[:n]
	}
	copy(br.buf, b[4:])
	if err := br.decode(); err != nil {
		return nil, err
	}
	return br.q.request(), nil
}

// request converts a validated query back to its wire Request form,
// cloning every slice so the result does not alias pooled buffers.
func (q *query) request() *Request {
	req := &Request{Kind: q.kind}
	if len(q.cs) > 0 {
		req.Contenders = make([]ContenderSpec, len(q.cs))
		for i, c := range q.cs {
			req.Contenders[i] = ContenderSpec{
				CommFraction: c.CommFraction, MsgWords: c.MsgWords, IOFraction: c.IOFraction,
			}
		}
	}
	if q.kind == "comm" {
		req.Dir = "to_back"
		if q.dir == core.BackToHost {
			req.Dir = "to_host"
		}
		req.Sets = make([]DataSetSpec, len(q.sets))
		for i, s := range q.sets {
			req.Sets[i] = DataSetSpec{N: s.N, Words: s.Words}
		}
		return req
	}
	d := q.dcomp
	req.Dcomp = &d
	if q.hasJ {
		j := q.j
		req.J = &j
	}
	return req
}

// Direct validates req and answers it with a plain (unbatched)
// Predictor call — the reference evaluation the PR 5 differential
// compares the served pipeline against, reused by the DES replay driver
// and the sweep matrix's direct cells. With tryFast set, resident keys
// are answered from the surface/memo fast path first (Fast=true),
// mirroring a FastPath server; otherwise every answer is the exact DP
// result.
func Direct(pred *core.Predictor, req *Request, tryFast bool) (Response, error) {
	q, err := req.validate()
	if err != nil {
		return Response{}, err
	}
	if tryFast {
		var v float64
		var ok bool
		switch {
		case q.kind == "comm":
			v, ok = pred.TryPredictComm(q.dir, q.sets, q.cs)
		case q.hasJ:
			v, ok = pred.TryPredictCompWithJ(q.dcomp, q.cs, q.j)
		default:
			v, ok = pred.TryPredictComp(q.dcomp, q.cs)
		}
		if ok {
			return Response{Value: v, Fast: true}, nil
		}
	}
	var v float64
	switch {
	case q.kind == "comm":
		v, err = pred.PredictComm(q.dir, q.sets, q.cs)
	case q.hasJ:
		v, err = pred.PredictCompWithJ(q.dcomp, q.cs, q.j)
	default:
		v, err = pred.PredictComp(q.dcomp, q.cs)
	}
	if err != nil {
		return Response{}, err
	}
	return Response{Value: v}, nil
}
