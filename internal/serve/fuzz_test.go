package serve

import (
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeRequest fuzzes the wire decoder and validator with
// arbitrary bodies. The contract: DecodeRequest + validate either
// succeed or fail with a *RequestError whose status is 4xx — malformed
// JSON, NaN/Inf sizes, negative contender counts, unknown fields,
// oversized bodies, and binary garbage must never panic and must never
// be classified as a server-side (5xx) fault.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"kind":"comm","dir":"to_back","sets":[{"n":10,"words":100}],"contenders":[{"comm_fraction":0.2,"msg_words":50}]}`,
		`{"kind":"comp","dcomp":1.5,"contenders":[{"comm_fraction":0.2,"msg_words":50}]}`,
		`{"kind":"comp","dcomp":1.5,"j":500,"p":3,"contenders":[{"comm_fraction":0.2,"msg_words":50}]}`,
		`{"kind":"comp","dcomp":NaN}`,
		`{"kind":"comp","dcomp":1e309}`,
		`{"kind":"comp","dcomp":-4}`,
		`{"kind":"comp","dcomp":1,"p":-3,"contenders":[{"comm_fraction":0.2}]}`,
		`{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":-0.5,"msg_words":-7}]}`,
		`{"kind":"comm","dir":"sideways","sets":[{"n":1,"words":1}]}`,
		`{"kind":"comm","dir":"to_back","sets":[]}`,
		`{"kind":"","contenders":null}`,
		`{"unknown_field":true}`,
		`{"kind":"comp","dcomp":1}{"trailing":"document"}`,
		`[1,2,3]`, `"just a string"`, `null`, `42`, ``, `{`, "\x00\xff\xfe",
		strings.Repeat(`{"kind":"comp",`, 10_000),
		`{"kind":"comp","dcomp":1,"contenders":[` + strings.Repeat(`{"comm_fraction":0.1},`, 64) + `{"comm_fraction":0.1}]}`,
		`{"kind":"comp","dcomp":1,"j":2147483648}`,
		`{"kind":"comm","dir":"to_host","sets":[{"n":-1,"words":100}],"contenders":[]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeRequest(strings.NewReader(body))
		if err != nil {
			requireRequestError(t, err, body)
			return
		}
		if _, err := req.validate(); err != nil {
			requireRequestError(t, err, body)
		}
	})
}

// requireRequestError asserts err is the typed 4xx rejection the
// handler maps to a client-fault status.
func requireRequestError(t *testing.T, err error, body string) {
	t.Helper()
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, not *RequestError: %v\nbody: %q", err, err, body)
	}
	if st := statusFor(err); st < 400 || st > 499 {
		t.Fatalf("statusFor = %d, want 4xx: %v\nbody: %q", st, err, body)
	}
}
