package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
)

// TestCloseFlushesParkedWindow pins the shutdown ordering fix: a
// request parked in the batch window when Close is called must still be
// answered (Close flushes the pending groups itself), and Close must
// not return while that flush is evaluating into the predictor.
func TestCloseFlushesParkedWindow(t *testing.T) {
	s, err := New(Config{
		Pred:     newTestPredictor(t),
		Window:   10 * time.Second, // far beyond the test: only Close can flush
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var inFlush atomic.Int64
	flushed := make(chan struct{}, 4)
	s.flushStall = func() {
		inFlush.Add(1)
		time.Sleep(5 * time.Millisecond)
		flushed <- struct{}{}
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.Predict(context.Background(), query{
			kind: "comp", dcomp: 1,
			cs: []core.Contender{{CommFraction: 0.3, MsgWords: 500}},
		})
		done <- err
	}()

	// Wait until the request is parked in the window.
	deadline := time.After(2 * time.Second)
	for {
		s.mu.Lock()
		parked := s.pendingN
		s.mu.Unlock()
		if parked == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("request never parked in the batch window")
		case <-time.After(time.Millisecond):
		}
	}

	s.Close()
	if n := inFlush.Load(); n != 1 {
		t.Fatalf("Close performed %d flushes, want exactly 1", n)
	}
	select {
	case <-flushed:
	default:
		t.Fatal("Close returned before the flush finished")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked request failed across Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked request never completed after Close")
	}

	// Idempotence: a second Close is a no-op, not a second flush.
	s.Close()
	if n := inFlush.Load(); n != 1 {
		t.Fatalf("second Close re-flushed (%d flushes)", n)
	}
}

// TestCloseStopsWindowTimer pins the other half of the ordering fix:
// once Close has flushed, the armed window timer must not fire a second
// flush into the closed server.
func TestCloseStopsWindowTimer(t *testing.T) {
	s, err := New(Config{
		Pred:     newTestPredictor(t),
		Window:   20 * time.Millisecond,
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var flushes atomic.Int64
	s.flushStall = func() { flushes.Add(1) }

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Predict(context.Background(), query{
			kind: "comp", dcomp: 1,
			cs: []core.Contender{{CommFraction: 0.2, MsgWords: 100}},
		})
	}()
	deadline := time.After(2 * time.Second)
	for {
		s.mu.Lock()
		parked := s.pendingN
		s.mu.Unlock()
		if parked == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("request never parked")
		case <-time.After(time.Millisecond):
		}
	}
	s.Close()
	<-done
	// Sleep past the original window: if Close failed to stop the
	// timer, flushWindow would run (and with the old code, evaluate
	// into a closed server).
	time.Sleep(60 * time.Millisecond)
	if n := flushes.Load(); n != 1 {
		t.Fatalf("%d flushes after Close + window elapse, want 1", n)
	}
}

// degradedTracker builds a tracker whose strict validation fails, so it
// adopts in the Degraded state.
func degradedTracker(t *testing.T) (*core.Predictor, *caltrust.Tracker) {
	t.Helper()
	cal := SyntheticCalibration()
	cal.Tables.CompOnComm = []float64{3.0, 0.2, 3.5, 4.0, 4.1, 4.2, 4.3, 4.4} // grossly non-monotone
	pred := core.NewPredictorLenient(cal)
	tr, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	if tr.State() != caltrust.Degraded {
		t.Fatalf("fixture tracker state %v, want degraded", tr.State())
	}
	return pred, tr
}

func getReady(t *testing.T, ts *httptest.Server) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestReadyzLifecycle(t *testing.T) {
	pred := newTestPredictor(t)
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatalf("tracker: %v", err)
	}
	s, ts := newTestServer(t, Config{Pred: pred, Tracker: tracker, Window: -1})

	if resp := getReady(t, ts); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", resp.StatusCode)
	}

	s.Drain()
	resp := getReady(t, ts)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining /readyz carries no Retry-After")
	}

	// Draining gates readiness only — the predict path stays up for
	// requests already admitted upstream.
	code, _ := post(t, ts.Client(), ts.URL+"/v1/predict",
		`{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":0.3,"msg_words":500}]}`)
	if code != http.StatusOK {
		t.Fatalf("predict while draining = %d, want 200", code)
	}
}

func TestReadyzDegradedTracker(t *testing.T) {
	pred, tracker := degradedTracker(t)
	_, ts := newTestServer(t, Config{Pred: pred, Tracker: tracker, Window: -1})
	resp := getReady(t, ts)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded /readyz carries no Retry-After")
	}
}

// TestReadyzStaleStaysReady: a merely Stale calibration keeps serving —
// conservative p+1 answers are still useful capacity — while /healthz
// honestly reports the degradation.
func TestReadyzStaleStaysReady(t *testing.T) {
	pred := newTestPredictor(t)
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatalf("tracker: %v", err)
	}
	_, ts := newTestServer(t, Config{Pred: pred, Tracker: tracker, Window: -1})
	pred.MarkStale("rm invalidated")

	if resp := getReady(t, ts); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale /readyz = %d, want 200", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Trust  string `json:"trust"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	if h.Status != "degraded" || h.Trust != caltrust.Stale.String() {
		t.Fatalf("/healthz = %+v, want status=degraded trust=stale", h)
	}
}

// TestRetryAfterOnOverload pins the back-off hint on 429: a full
// admission queue refuses with Retry-After set.
func TestRetryAfterOnOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Window:      time.Second, // park the first request in the window
		MaxBatch:    64,
		MaxInFlight: 1,
		MaxQueue:    1,
		Timeout:     5 * time.Second,
	})
	body := `{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":0.3,"msg_words":500}]}`

	// Fill the in-flight slot and the queue slot with parked requests.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.After(2 * time.Second)
	for s.adm.InFlight()+s.adm.Waiting() < 2 {
		select {
		case <-deadline:
			t.Fatalf("fillers never admitted (in-flight %d, waiting %d)",
				s.adm.InFlight(), s.adm.Waiting())
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded predict = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != RetryAfterSeconds {
		t.Fatalf("429 Retry-After = %q, want %q", got, RetryAfterSeconds)
	}
}
