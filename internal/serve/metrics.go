package serve

import "contention/internal/obs"

// Serving telemetry. Request/response tallies are labelled families so
// the run manifest can break traffic down by kind and outcome; batch
// size and latency are histograms on the shared default buckets.
var (
	mRequests = obs.NewCounterVec(obs.MetricServeRequests,
		"prediction requests received, by kind", "kind")
	mResponses = obs.NewCounterVec(obs.MetricServeResponses,
		"prediction responses sent, by outcome", "outcome")
	mDegraded = obs.NewCounter(obs.MetricServeDegraded,
		"responses answered with the conservative p+1 fallback")
	mBatches = obs.NewCounter(obs.MetricServeBatches,
		"micro-batch flushes executed")
	mBatchSize = obs.NewHistogram(obs.MetricServeBatchSize,
		"requests per micro-batch flush", obs.DefaultSizeBuckets())
	mQueueDepth = obs.NewGauge(obs.MetricServeQueueDepth,
		"requests currently parked in the batcher")
	mQueueDepthMax = obs.NewGauge(obs.MetricServeQueueDepthMax,
		"high-water mark of the batcher queue depth")
	mRequestSeconds = obs.NewHistogram(obs.MetricServeRequestSeconds,
		"end-to-end request latency in seconds", obs.DefaultSecondsBuckets())
	mFlushSeconds = obs.NewHistogram(obs.MetricServeFlushSeconds,
		"micro-batch flush duration in seconds", obs.DefaultSecondsBuckets())
	mBinaryRequests = obs.NewCounter(obs.MetricServeBinaryRequests,
		"prediction requests arriving in the binary wire format")
	mFastHits = obs.NewCounter(obs.MetricServeFastHits,
		"requests answered by the batcher-bypass fast path")
	mFastMisses = obs.NewCounter(obs.MetricServeFastMisses,
		"fast-path attempts that fell back to the batcher pipeline")
)
