// Package serve is the online prediction front end: an HTTP/JSON
// service that answers slowdown-adjusted cost queries from the
// Figueira–Berman model at traffic rates far beyond what per-request
// model evaluation would allow.
//
// The core trick is micro-batching. The mixture slowdowns are pure
// functions of the contender multiset (plus the delay^{i,j} column),
// and real scheduler traffic is heavily repetitive in exactly that key
// — many concurrent queries price different transfers under the same
// job mix. The server therefore parks concurrent requests for one
// batch window, groups them per (kind, direction, j, contender
// multiset) key, and answers each group with a single
// PredictCommBatch/PredictCompBatch call: one Poisson-binomial DP per
// group per window, amortized over every request in it. Group
// evaluations fan out on the shared internal/runner pool.
//
// Around the batcher sit the production concerns the rest of the stack
// already provides: rm.Admission bounds concurrent and queued requests
// (explicit 429s instead of collapse), per-request deadlines bound tail
// latency (504), and the caltrust trust state is consulted on every
// request — a Stale or Degraded calibration flips the server to the
// conservative p+1 fallback (answers flagged degraded, never silently
// wrong). Everything is instrumented through internal/obs.
//
// Batching is exact, not approximate: a batched answer is bit-for-bit
// identical to the direct Predictor call for the same request (the
// differential test enforces this over a randomized corpus).
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/rm"
	"contention/internal/runner"
)

// Admission rejections surface the resource manager's own sentinel
// errors, so clients of both layers handle one vocabulary.
var (
	ErrQueueFull = rm.ErrQueueFull
	// ErrDeadline is returned when a request's deadline expires before
	// its batch is evaluated.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrClosed is returned for requests submitted after Close.
	ErrClosed = errors.New("serve: server closed")
)

// Defaults applied by New for zero Config fields.
const (
	DefaultWindow      = time.Millisecond
	DefaultMaxBatch    = 256
	DefaultMaxInFlight = 1024
	DefaultMaxQueue    = 4096
	DefaultTimeout     = 2 * time.Second
)

// Config parameterizes a Server.
type Config struct {
	// Pred answers the queries. Required.
	Pred *core.Predictor
	// Tracker, when non-nil, is the calibration trust state consulted on
	// every request: any non-Fresh state short-circuits to the p+1
	// degraded fallback, exactly like the batch drivers.
	Tracker *caltrust.Tracker
	// Pool fans group evaluations out at flush time; nil evaluates
	// serially on the flushing goroutine.
	Pool *runner.Pool
	// Window is the micro-batch window: how long the first request of a
	// window parks waiting for peers. 0 selects DefaultWindow; negative
	// disables batching across arrivals (each request still batches with
	// whatever queued while a flush was in progress).
	Window time.Duration
	// MaxBatch flushes a group early when it reaches this many requests.
	// 0 selects DefaultMaxBatch.
	MaxBatch int
	// MaxInFlight bounds concurrently admitted requests (0 selects
	// DefaultMaxInFlight); MaxQueue bounds requests waiting for
	// admission beyond that (0 selects DefaultMaxQueue).
	MaxInFlight int
	MaxQueue    int
	// Timeout is the per-request deadline ceiling applied by the HTTP
	// handler. 0 selects DefaultTimeout.
	Timeout time.Duration
	// FastPath enables the batcher bypass: a request whose slowdown is
	// already resident (precomputed surface or warm memo cache) and that
	// wins an admission slot without waiting is answered inline —
	// no batch window, no timer, no goroutine handoff. Answers carry
	// Fast=true. Off by default: the bypass answers surface-resident
	// keys from the interpolated surface, which is bit-exact only at
	// grid nodes, so it is opt-in alongside AttachSurface.
	FastPath bool
	// Sampler head-samples requests for full span trees (see trace.go).
	// nil never starts a trace locally but still honors sampled contexts
	// arriving from upstream.
	Sampler *obs.Sampler
	// SLO, when non-nil, receives every finished request (latency +
	// success) and gates /readyz detail with burn-rate status.
	SLO *obs.SLOTracker
}

// Server is the prediction service. Build with New; it is goroutine-safe.
type Server struct {
	cfg Config
	adm *rm.Admission

	mu       sync.Mutex
	groups   map[string]*group
	pendingN int
	armed    bool
	closed   bool
	timer    *time.Timer // pending batch-window timer (nil when unarmed)

	// draining marks the server not-ready (/readyz answers 503) while
	// requests already in the pipeline are still answered.
	draining atomic.Bool
	// flushing tracks batch evaluations in flight so Close can wait for
	// them: after Close returns, nothing touches the predictor again.
	flushing sync.WaitGroup

	// flushStall, when non-nil, is invoked at the start of every flush —
	// the fault-injection hook the soak test uses to stall evaluation.
	flushStall func()
}

// pendingReq is one parked request.
type pendingReq struct {
	q  query
	ch chan outcome
	// enq is when the request entered the batcher (batch-wait starts);
	// rt is its tracing handle, nil unless sampled.
	enq time.Time
	rt  *reqTrace
}

type outcome struct {
	resp Response
	err  error
}

// group is the set of parked requests sharing one batch key.
type group struct {
	reqs []*pendingReq
}

// New builds a server, applying defaults for zero Config fields.
func New(cfg Config) (*Server, error) {
	if cfg.Pred == nil {
		return nil, errors.New("serve: Config.Pred is required")
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	return &Server{
		cfg:    cfg,
		adm:    rm.NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		groups: map[string]*group{},
	}, nil
}

// Config returns the effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Admission exposes the admission controller (for stats).
func (s *Server) Admission() *rm.Admission { return s.adm }

// Drain marks the server not-ready: GET /readyz answers 503 so routers
// and external load balancers stop sending new work, while requests
// already accepted (and stragglers that still arrive) are answered
// normally. Close implies Drain.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close flushes every parked request and fails all future submissions
// with ErrClosed. It is idempotent, and it does not return until every
// in-flight batch evaluation — including one started by a concurrent
// batch-window timer — has finished: after Close returns, the server
// will never touch the predictor again, so the caller may safely tear
// the predictor or pool down.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.flushing.Wait()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	gs := s.takeLocked()
	if len(gs) > 0 {
		s.flushing.Add(1)
	}
	s.mu.Unlock()
	if len(gs) > 0 {
		s.runGroups(gs)
		s.flushing.Done()
	}
	s.flushing.Wait()
}

// degradeReason reports why predictions cannot currently be trusted
// ("" when they can).
func (s *Server) degradeReason() string {
	if t := s.cfg.Tracker; t != nil {
		if st := t.State(); st != caltrust.Fresh {
			return fmt.Sprintf("calibration %s: %s", st, t.Reason())
		}
	}
	if st := s.cfg.Pred.Stale(); st != "" {
		return "stale calibration: " + st
	}
	return ""
}

// Predict answers one validated query, micro-batching it with
// concurrent peers. It blocks until the answer is computed, the context
// ends (ErrDeadline), or admission rejects the request.
func (s *Server) Predict(ctx context.Context, q query) (Response, error) {
	return s.predict(ctx, q, nil)
}

// predict is Predict with a tracing handle (nil unless sampled). Stage
// boundaries are timed on every request for the attribution histograms;
// rt promotes the same intervals to spans when non-nil.
func (s *Server) predict(ctx context.Context, q query, rt *reqTrace) (Response, error) {
	mRequests.With(q.kind).Inc()
	admStart := time.Now()
	if err := s.adm.Acquire(ctx); err != nil {
		if errors.Is(err, rm.ErrSubmitTimeout) {
			return Response{}, fmt.Errorf("%w: %w", ErrDeadline, err)
		}
		return Response{}, err
	}
	defer s.adm.Release()
	admDone := time.Now()
	stAdmission.Observe(admDone.Sub(admStart).Seconds())
	rt.stage("admission", admStart, admDone)

	// Degraded fast path: a calibration that cannot be trusted answers
	// with the conservative worst case immediately — no batching, no DP.
	if reason := s.degradeReason(); reason != "" {
		resp, err := s.predictDegraded(q, reason)
		done := time.Now()
		stCompute.Observe(done.Sub(admDone).Seconds())
		rt.stage("compute", admDone, done)
		return resp, err
	}

	req := &pendingReq{q: q, ch: make(chan outcome, 1), enq: admDone, rt: rt}
	if flushNow := s.enqueue(req); flushNow != nil {
		s.runGroups(flushNow)
		s.flushing.Done()
	}
	select {
	case out := <-req.ch:
		return out.resp, out.err
	case <-ctx.Done():
		return Response{}, fmt.Errorf("%w: %w", ErrDeadline, ctx.Err())
	}
}

// tryFast answers a query without touching the batcher: the slowdown
// must already be resident (surface or warm cache probe — core's Try
// methods) and an admission slot must be free right now. Everything
// else falls through to the full Predict pipeline, which owns waiting,
// degradation, and error reporting. The whole path is allocation-free,
// so it is safe against pooled (binary) query slices — nothing retains
// them past the return.
func (s *Server) tryFast(q *query, rt *reqTrace) (Response, bool) {
	if !s.cfg.FastPath || s.draining.Load() {
		return Response{}, false
	}
	if !s.adm.TryAcquire() {
		mFastMisses.Inc()
		return Response{}, false
	}
	defer s.adm.Release()
	start := time.Now()
	var v float64
	var ok bool
	switch {
	case q.kind == "comm":
		v, ok = s.cfg.Pred.TryPredictComm(q.dir, q.sets, q.cs)
	case q.hasJ:
		v, ok = s.cfg.Pred.TryPredictCompWithJ(q.dcomp, q.cs, q.j)
	default:
		v, ok = s.cfg.Pred.TryPredictComp(q.dcomp, q.cs)
	}
	if !ok {
		mFastMisses.Inc()
		return Response{}, false
	}
	done := time.Now()
	stSurface.Observe(done.Sub(start).Seconds())
	rt.stage("surface", start, done)
	mFastHits.Inc()
	mRequests.With(q.kind).Inc()
	return Response{Value: v, Fast: true}, true
}

// predictDegraded answers via the Robust p+1 fallback.
func (s *Server) predictDegraded(q query, reason string) (Response, error) {
	mDegraded.Inc()
	var pred core.Prediction
	var err error
	switch q.kind {
	case "comm":
		pred, err = s.cfg.Pred.PredictCommRobust(q.dir, q.sets, q.cs)
	default:
		pred, err = s.cfg.Pred.PredictCompRobust(q.dcomp, q.cs)
	}
	if err != nil {
		return Response{}, err
	}
	if !pred.Degraded {
		// Robust found the calibration usable after all (e.g. the mark
		// cleared between the check and the call); keep the flag honest.
		pred.Degraded, pred.Reason = true, reason
	}
	return Response{Value: pred.Value, Degraded: true, Reason: pred.Reason}, nil
}

// enqueue parks the request under its batch key. It returns a non-nil
// group list when the caller must flush immediately (group hit
// MaxBatch, or batching across arrivals is disabled); the caller must
// then call s.flushing.Done() after runGroups — the flush was
// registered here, under the lock, so Close can wait for it.
func (s *Server) enqueue(req *pendingReq) []*group {
	key := batchKey(req.q)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		req.ch <- outcome{err: ErrClosed}
		return nil
	}
	g := s.groups[key]
	if g == nil {
		g = &group{}
		s.groups[key] = g
	}
	g.reqs = append(g.reqs, req)
	s.pendingN++
	mQueueDepth.Set(float64(s.pendingN))
	mQueueDepthMax.SetMax(float64(s.pendingN))

	if len(g.reqs) >= s.cfg.MaxBatch {
		delete(s.groups, key)
		s.pendingN -= len(g.reqs)
		mQueueDepth.Set(float64(s.pendingN))
		s.flushing.Add(1)
		s.mu.Unlock()
		return []*group{g}
	}
	if s.cfg.Window < 0 {
		gs := s.takeLocked()
		s.flushing.Add(1)
		s.mu.Unlock()
		return gs
	}
	if !s.armed {
		s.armed = true
		s.timer = time.AfterFunc(s.cfg.Window, s.flushWindow)
	}
	s.mu.Unlock()
	return nil
}

// takeLocked detaches every parked group. Caller holds s.mu.
func (s *Server) takeLocked() []*group {
	gs := make([]*group, 0, len(s.groups))
	for key, g := range s.groups {
		gs = append(gs, g)
		delete(s.groups, key)
	}
	s.pendingN = 0
	mQueueDepth.Set(0)
	return gs
}

// flushWindow is the batch-window timer callback.
func (s *Server) flushWindow() {
	s.mu.Lock()
	s.armed = false
	s.timer = nil
	if s.closed {
		// Close already detached (and flushed) every parked group; a
		// late-firing timer must not start a second evaluation.
		s.mu.Unlock()
		return
	}
	gs := s.takeLocked()
	if len(gs) == 0 {
		s.mu.Unlock()
		return
	}
	s.flushing.Add(1)
	s.mu.Unlock()
	s.runGroups(gs)
	s.flushing.Done()
}

// runGroups evaluates detached groups, fanning out on the pool. Each
// group costs one slowdown DP regardless of its size.
func (s *Server) runGroups(gs []*group) {
	if len(gs) == 0 {
		return
	}
	if s.flushStall != nil {
		s.flushStall()
	}
	span := obs.StartSpan("serve", "batch-flush")
	start := time.Now()
	// The flush context is deliberately Background: individual request
	// deadlines must not cancel work their batch peers still wait on.
	_, _ = runner.Map(context.Background(), s.cfg.Pool, gs,
		func(_ context.Context, _ int, g *group) (struct{}, error) {
			s.evalGroup(g)
			return struct{}{}, nil
		})
	mFlushSeconds.Observe(time.Since(start).Seconds())
	span.End()
}

// evalGroup answers every request in one group with a single batched
// predictor call.
func (s *Server) evalGroup(g *group) {
	n := len(g.reqs)
	if n == 0 {
		return
	}
	mBatches.Inc()
	mBatchSize.Observe(float64(n))

	// Batch rendezvous ends here: everything between enqueue and this
	// point was time spent waiting for peers (or the window timer).
	evalStart := time.Now()
	for _, r := range g.reqs {
		if !r.enq.IsZero() {
			stBatchWait.Observe(evalStart.Sub(r.enq).Seconds())
			r.rt.stage("batch-wait", r.enq, evalStart)
		}
	}

	first := g.reqs[0].q
	// All requests in a group share kind, direction, j selection, and
	// contender multiset — that is what the batch key canonicalizes.
	var vals []float64
	var err error
	switch first.kind {
	case "comm":
		batches := make([][]core.DataSet, n)
		for i, r := range g.reqs {
			batches[i] = r.q.sets
		}
		vals, err = s.cfg.Pred.PredictCommBatch(first.dir, batches, first.cs)
	default:
		dcomps := make([]float64, n)
		for i, r := range g.reqs {
			dcomps[i] = r.q.dcomp
		}
		if first.hasJ {
			vals, err = s.cfg.Pred.PredictCompBatchWithJ(dcomps, first.cs, first.j)
		} else {
			vals, err = s.cfg.Pred.PredictCompBatch(dcomps, first.cs)
		}
	}
	// One DP answered the whole group; each request waited exactly that
	// long, so the compute stage is attributed to every member. Stages
	// are recorded before the outcome is sent — once the handler unblocks
	// it may end the root span.
	evalDone := time.Now()
	evalSecs := evalDone.Sub(evalStart).Seconds()
	if err != nil {
		for _, r := range g.reqs {
			stCompute.Observe(evalSecs)
			r.rt.stage("compute", evalStart, evalDone)
			r.ch <- outcome{err: err}
		}
		return
	}
	for i, r := range g.reqs {
		stCompute.Observe(evalSecs)
		r.rt.stage("compute", evalStart, evalDone)
		r.ch <- outcome{resp: Response{Value: vals[i], Batch: n}}
	}
}

// batchKey canonicalizes a query into its micro-batch key: kind,
// direction, explicit-j selection, and the order-insensitive contender
// multiset. Two queries with equal keys are answerable by one batched
// predictor call.
func batchKey(q query) string {
	cs := append([]core.Contender(nil), q.cs...)
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.CommFraction != b.CommFraction {
			return a.CommFraction < b.CommFraction
		}
		if a.IOFraction != b.IOFraction {
			return a.IOFraction < b.IOFraction
		}
		return a.MsgWords < b.MsgWords
	})
	buf := make([]byte, 0, 2+9+24*len(cs))
	// kind[0] is 'c' for both comm and comp — use the last byte ('m' vs
	// 'p') so the two kinds can never share a batch group.
	buf = append(buf, q.kind[len(q.kind)-1], byte(q.dir))
	if q.hasJ {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(q.j))
	} else {
		buf = append(buf, 0)
	}
	for _, c := range cs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.CommFraction))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.IOFraction))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.MsgWords))
	}
	return string(buf)
}

// --- HTTP front end ----------------------------------------------------------

// Handler returns the service mux:
//
//	POST /v1/predict  — one prediction query (Request → Response)
//	POST /v1/observe  — feed a predicted/observed residual to the trust
//	                    tracker (drift detection over live traffic)
//	GET  /healthz     — liveness + trust state
//	GET  /readyz      — routability: 503 while draining or while the
//	                    calibration is Degraded (failed validation)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// RetryAfterSeconds is the back-off hint set on every 429 and 503
// response, so routers and external load balancers pace their retries
// instead of hammering an overloaded or draining instance.
const RetryAfterSeconds = "1"

// setBackoffHint stamps the Retry-After header for statuses that ask
// the client to come back later.
func setBackoffHint(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", RetryAfterSeconds)
	}
}

// outcomeLabel classifies an error for the responses-by-outcome series.
func outcomeLabel(err error) string {
	var reqErr *RequestError
	switch {
	case err == nil:
		return "ok"
	case errors.As(err, &reqErr):
		return "bad_request"
	case errors.Is(err, ErrQueueFull):
		return "rejected"
	case errors.Is(err, ErrDeadline):
		return "timeout"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "model_error"
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Content-Type") == ContentTypeBinary {
		s.handlePredictBinary(w, r)
		return
	}
	start := time.Now()
	rt := s.requestTrace(r, obs.TraceContext{})
	resp, err := s.servePredict(r, rt)
	mResponses.With(outcomeLabel(err)).Inc()
	mRequestSeconds.Observe(time.Since(start).Seconds())
	s.recordSLO(start, err)
	encStart := time.Now()
	if err != nil {
		s.writeErrorEnvelope(w, r, err)
	} else {
		if rid := r.Header.Get(RequestIDHeader); rid != "" {
			w.Header().Set(RequestIDHeader, rid)
		}
		writeJSON(w, http.StatusOK, resp)
	}
	encDone := time.Now()
	stEncode.Observe(encDone.Sub(encStart).Seconds())
	rt.stage("encode", encStart, encDone)
	rt.end()
}

// writeErrorEnvelope answers a pipeline error as the JSON envelope,
// correlated by request id: the client's X-Request-Id when sent, a
// minted one otherwise, echoed in both the header and the body.
func (s *Server) writeErrorEnvelope(w http.ResponseWriter, r *http.Request, err error) {
	status := statusFor(err)
	if errors.Is(err, ErrClosed) {
		status = http.StatusServiceUnavailable
	}
	rid := r.Header.Get(RequestIDHeader)
	if rid == "" {
		rid = newRequestID()
	}
	w.Header().Set(RequestIDHeader, rid)
	setBackoffHint(w, status)
	writeJSON(w, status, errorBody{Error: err.Error(), RequestID: rid})
}

// DeadlineHeader carries the caller's remaining request budget in
// milliseconds. A router in front of the daemon sets it so the replica
// bounds its own work (batch window, queue wait) to time someone is
// still waiting for, instead of finishing answers nobody will read.
const DeadlineHeader = "X-Request-Deadline-Ms"

// requestTimeout is the effective per-request budget: the configured
// Timeout, tightened by a propagated upstream deadline if one arrived.
// An unparsable or non-positive header is ignored — a confused caller
// must not widen or zero the local bound.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.Timeout
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if up := time.Duration(ms) * time.Millisecond; up < d {
				d = up
			}
		}
	}
	return d
}

// servePredict decodes, validates, and answers one HTTP query.
func (s *Server) servePredict(r *http.Request, rt *reqTrace) (Response, error) {
	decStart := time.Now()
	req, err := DecodeRequest(r.Body)
	if err != nil {
		return Response{}, err
	}
	q, err := req.validate()
	if err != nil {
		return Response{}, err
	}
	decDone := time.Now()
	stDecode.Observe(decDone.Sub(decStart).Seconds())
	rt.stage("decode", decStart, decDone)
	// Fast path before the deadline context: a resident answer needs no
	// timer allocation and cannot block.
	if resp, ok := s.tryFast(&q, rt); ok {
		return resp, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	defer cancel()
	return s.predict(ctx, q, rt)
}

// handlePredictBinary is handlePredict for the binary wire format: the
// request is decoded into a pooled workspace and, on the fast path, the
// response is encoded from the same workspace — zero steady-state
// allocations end to end. Pipeline errors are answered as the JSON
// error envelope (the status code carries the verdict either way).
func (s *Server) handlePredictBinary(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mBinaryRequests.Inc()
	br := binReqPool.Get().(*binReq)
	resp, rt, err := s.servePredictBinary(br, r)
	mResponses.With(outcomeLabel(err)).Inc()
	mRequestSeconds.Observe(time.Since(start).Seconds())
	s.recordSLO(start, err)
	if err != nil {
		binReqPool.Put(br)
		encStart := time.Now()
		s.writeErrorEnvelope(w, r, err)
		encDone := time.Now()
		stEncode.Observe(encDone.Sub(encStart).Seconds())
		rt.stage("encode", encStart, encDone)
		rt.end()
		return
	}
	encStart := time.Now()
	br.out = appendBinaryResponse(br.out[:0], resp)
	w.Header().Set("Content-Type", ContentTypeBinary)
	_, _ = w.Write(br.out)
	encDone := time.Now()
	stEncode.Observe(encDone.Sub(encStart).Seconds())
	rt.stage("encode", encStart, encDone)
	rt.end()
	binReqPool.Put(br)
}

// servePredictBinary decodes one binary query into br and answers it.
// The returned *reqTrace is nil unless the request is sampled (in-band
// trace block, trace header, or local head sampler — in that order).
func (s *Server) servePredictBinary(br *binReq, r *http.Request) (Response, *reqTrace, error) {
	decStart := time.Now()
	if err := br.readBody(r.Body); err != nil {
		return Response{}, nil, err
	}
	if err := br.decode(); err != nil {
		return Response{}, nil, err
	}
	decDone := time.Now()
	// The in-band trace context is only known after decode, so the
	// decode stage span is recorded retroactively.
	rt := s.requestTrace(r, br.tc)
	stDecode.Observe(decDone.Sub(decStart).Seconds())
	rt.stage("decode", decStart, decDone)
	if resp, ok := s.tryFast(&br.q, rt); ok {
		return resp, rt, nil
	}
	// Slow path: the query's slices alias br's pooled backing arrays,
	// but the batcher retains the query past this function's return (a
	// peer's flush may still read it after our deadline fires). Clone
	// before enqueueing; the allocation rides the path that runs a DP
	// anyway.
	q := br.q
	q.cs = append([]core.Contender(nil), q.cs...)
	q.sets = append([]core.DataSet(nil), q.sets...)
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	defer cancel()
	resp, err := s.predict(ctx, q, rt)
	return resp, rt, err
}

// observeRequest is the wire form of one residual observation.
type observeRequest struct {
	Predicted float64 `json:"predicted"`
	Observed  float64 `json:"observed"`
}

type observeResponse struct {
	Drifted bool   `json:"drifted"`
	Trust   string `json:"trust"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tracker == nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: "no trust tracker configured"})
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	var req observeRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed observation: " + err.Error()})
		return
	}
	drifted, err := s.cfg.Tracker.Observe(req.Predicted, req.Observed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, observeResponse{Drifted: drifted, Trust: s.cfg.Tracker.State().String()})
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status   string  `json:"status"`
	Trust    string  `json:"trust"`
	Reason   string  `json:"reason,omitempty"`
	WindowMS float64 `json:"window_ms"`
	InFlight int     `json:"in_flight"`
	Waiting  int     `json:"waiting"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{
		Status:   "ok",
		Trust:    caltrust.Fresh.String(),
		WindowMS: float64(s.cfg.Window) / float64(time.Millisecond),
		InFlight: s.adm.InFlight(),
		Waiting:  s.adm.Waiting(),
	}
	if t := s.cfg.Tracker; t != nil {
		h.Trust = t.State().String()
		h.Reason = t.Reason()
	}
	// A replica-local staleness mark (e.g. the RM invalidated this
	// calibration) is degradation evidence even when the tracker still
	// trusts its own validation — mirror degradeReason, which flags the
	// answers themselves.
	if h.Trust == caltrust.Fresh.String() {
		if st := s.cfg.Pred.Stale(); st != "" {
			h.Trust = caltrust.Stale.String()
			h.Reason = st
		}
	}
	if h.Trust != caltrust.Fresh.String() {
		h.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, h)
}

// readyResponse is the /readyz body. SLO carries the objective
// tracker's burn-rate detail when one is configured — an SLO breach is
// reported (operators and fleet pages see it) but does not flip
// readiness: pulling a slow replica sheds capacity and usually makes
// the burn worse.
type readyResponse struct {
	Ready  bool           `json:"ready"`
	Reason string         `json:"reason,omitempty"`
	SLO    *obs.SLOStatus `json:"slo,omitempty"`
}

// handleReady implements GET /readyz: readiness for new traffic, as
// distinct from /healthz liveness. Not-ready (503 + Retry-After) while
// draining or while the calibration is Degraded — failed validation
// outright, so every answer would be the blind p+1 fallback. A merely
// Stale calibration stays ready: degraded answers are conservative but
// still useful, and pulling the replica would shed capacity for no
// correctness gain.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	reason := ""
	switch {
	case s.draining.Load():
		reason = "draining"
	default:
		if t := s.cfg.Tracker; t != nil && t.State() == caltrust.Degraded {
			reason = "calibration degraded: " + t.Reason()
		}
	}
	var slo *obs.SLOStatus
	if s.cfg.SLO != nil {
		st := s.cfg.SLO.Status()
		slo = &st
	}
	if reason != "" {
		setBackoffHint(w, http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false, Reason: reason, SLO: slo})
		return
	}
	writeJSON(w, http.StatusOK, readyResponse{Ready: true, SLO: slo})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
