package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
)

// newTestPredictor builds a predictor over the synthetic calibration.
func newTestPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	pred, err := core.NewPredictor(SyntheticCalibration())
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	return pred
}

// newTestServer builds a server (defaults filled) and its HTTP front.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Pred == nil {
		cfg.Pred = newTestPredictor(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends one JSON body and decodes the response.
func post(t testing.TB, client *http.Client, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestServeCommMatchesDirect(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: 200 * time.Microsecond})
	body := `{"kind":"comm","dir":"to_back","sets":[{"n":10,"words":512}],
		"contenders":[{"comm_fraction":0.3,"msg_words":500}]}`
	code, out := post(t, ts.Client(), ts.URL+"/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %v", code, out)
	}
	want, err := s.cfg.Pred.PredictComm(core.HostToBack,
		[]core.DataSet{{N: 10, Words: 512}},
		[]core.Contender{{CommFraction: 0.3, MsgWords: 500}})
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if got := out["value"].(float64); got != want {
		t.Fatalf("served %v, direct %v", got, want)
	}
	if out["degraded"] != nil {
		t.Fatalf("unexpected degraded answer: %v", out)
	}
}

func TestServeCompWithJAndAuto(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: 200 * time.Microsecond})
	cs := []core.Contender{{CommFraction: 0.4, MsgWords: 900}, {CommFraction: 0.1, MsgWords: 10}}

	code, out := post(t, ts.Client(), ts.URL+"/v1/predict",
		`{"kind":"comp","dcomp":2.5,"contenders":[
			{"comm_fraction":0.4,"msg_words":900},{"comm_fraction":0.1,"msg_words":10}]}`)
	if code != http.StatusOK {
		t.Fatalf("auto-j status %d: %v", code, out)
	}
	want, err := s.cfg.Pred.PredictComp(2.5, cs)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if got := out["value"].(float64); got != want {
		t.Fatalf("auto-j served %v, direct %v", got, want)
	}

	code, out = post(t, ts.Client(), ts.URL+"/v1/predict",
		`{"kind":"comp","dcomp":2.5,"j":500,"contenders":[
			{"comm_fraction":0.4,"msg_words":900},{"comm_fraction":0.1,"msg_words":10}]}`)
	if code != http.StatusOK {
		t.Fatalf("explicit-j status %d: %v", code, out)
	}
	want, err = s.cfg.Pred.PredictCompWithJ(2.5, cs, 500)
	if err != nil {
		t.Fatalf("direct with j: %v", err)
	}
	if got := out["value"].(float64); got != want {
		t.Fatalf("explicit-j served %v, direct %v", got, want)
	}
}

func TestServeReplicatesP(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: -1})
	code, out := post(t, ts.Client(), ts.URL+"/v1/predict",
		`{"kind":"comp","dcomp":1,"p":4,"contenders":[{"comm_fraction":0.2,"msg_words":100}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	cs := make([]core.Contender, 4)
	for i := range cs {
		cs[i] = core.Contender{CommFraction: 0.2, MsgWords: 100}
	}
	want, err := s.cfg.Pred.PredictComp(1, cs)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if got := out["value"].(float64); got != want {
		t.Fatalf("served %v, direct %v", got, want)
	}
}

func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Window: -1})
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"malformed", `{"kind":`},
		{"unknown field", `{"kind":"comp","dcomp":1,"contenders":[],"bogus":1}`},
		{"missing kind", `{"contenders":[]}`},
		{"bad kind", `{"kind":"nope","contenders":[]}`},
		{"comm missing dir", `{"kind":"comm","sets":[{"n":1,"words":1}],"contenders":[]}`},
		{"comm no sets", `{"kind":"comm","dir":"to_back","contenders":[]}`},
		{"negative words", `{"kind":"comm","dir":"to_back","sets":[{"n":1,"words":-5}],"contenders":[]}`},
		{"comp missing dcomp", `{"kind":"comp","contenders":[]}`},
		{"negative dcomp", `{"kind":"comp","dcomp":-1,"contenders":[]}`},
		{"nan dcomp", `{"kind":"comp","dcomp":NaN,"contenders":[]}`},
		{"inf dcomp", `{"kind":"comp","dcomp":1e999,"contenders":[]}`},
		{"negative j", `{"kind":"comp","dcomp":1,"j":-3,"contenders":[]}`},
		{"negative p", `{"kind":"comp","dcomp":1,"p":-2,"contenders":[{"comm_fraction":0.1,"msg_words":1}]}`},
		{"huge p", `{"kind":"comp","dcomp":1,"p":100000,"contenders":[{"comm_fraction":0.1,"msg_words":1}]}`},
		{"bad fraction", `{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":1.5,"msg_words":1}]}`},
		{"trailing data", `{"kind":"comp","dcomp":1,"contenders":[]} {"x":1}`},
		{"comm with dcomp", `{"kind":"comm","dir":"to_back","sets":[{"n":1,"words":1}],"dcomp":1,"contenders":[]}`},
	}
	for _, tc := range cases {
		code, out := post(t, ts.Client(), ts.URL+"/v1/predict", tc.body)
		if code < 400 || code > 499 {
			t.Errorf("%s: status %d (want 4xx), body %v", tc.name, code, out)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("%s: no error field in %v", tc.name, out)
		}
	}
}

func TestServeDegradedOnStaleTracker(t *testing.T) {
	pred := newTestPredictor(t)
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	_, ts := newTestServer(t, Config{Pred: pred, Tracker: tracker, Window: -1})

	// Drive the tracker Stale through the observe endpoint: a healthy
	// baseline followed by a sustained shift trips the Page-Hinkley
	// detector (it detects changes, not constant offsets).
	for i := 0; i < 30; i++ {
		if code, _ := post(t, ts.Client(), ts.URL+"/v1/observe", `{"predicted":1.0,"observed":1.01}`); code != http.StatusOK {
			t.Fatalf("baseline observe status %d", code)
		}
	}
	for i := 0; i < 200 && tracker.State() == caltrust.Fresh; i++ {
		code, _ := post(t, ts.Client(), ts.URL+"/v1/observe", `{"predicted":1.0,"observed":3.0}`)
		if code != http.StatusOK {
			t.Fatalf("observe status %d", code)
		}
	}
	if tracker.State() != caltrust.Stale {
		t.Fatalf("tracker still %v after biased residuals", tracker.State())
	}

	body := `{"kind":"comp","dcomp":2,"p":3,"contenders":[{"comm_fraction":0.2,"msg_words":100}]}`
	code, out := post(t, ts.Client(), ts.URL+"/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["degraded"] != true {
		t.Fatalf("expected degraded answer, got %v", out)
	}
	// Worst case: dcomp × (p+1) with p = 3 contenders.
	if got, want := out["value"].(float64), 2*4.0; got != want {
		t.Fatalf("degraded value %v, want %v", got, want)
	}

	// Health reflects the trust state.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if h["trust"] != "stale" || h["status"] != "degraded" {
		t.Fatalf("healthz %v, want stale/degraded", h)
	}
}

func TestServeMicroBatchesSharedMix(t *testing.T) {
	_, ts := newTestServer(t, Config{Window: 5 * time.Millisecond})
	const n = 24
	body := func(i int) string {
		return fmt.Sprintf(`{"kind":"comp","dcomp":%d.5,"contenders":[{"comm_fraction":0.3,"msg_words":500}]}`, i+1)
	}
	type res struct {
		batch float64
		code  int
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			code, out := post(t, ts.Client(), ts.URL+"/v1/predict", body(i))
			b, _ := out["batch"].(float64)
			results <- res{batch: b, code: code}
		}(i)
	}
	maxBatch := 0.0
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if r.batch > maxBatch {
			maxBatch = r.batch
		}
	}
	// All share one contender mix: at least some requests must have been
	// answered together in a multi-request batch.
	if maxBatch < 2 {
		t.Fatalf("no micro-batching observed (max batch %v)", maxBatch)
	}
}

func TestServeDeadline(t *testing.T) {
	s, err := New(Config{Pred: newTestPredictor(t), Window: time.Hour, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// With an hour-long window and nothing to force an early flush, the
	// request must hit its deadline.
	code, out := post(t, ts.Client(), ts.URL+"/v1/predict",
		`{"kind":"comp","dcomp":1,"contenders":[{"comm_fraction":0.2,"msg_words":100}]}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %v", code, out)
	}
}

func TestServeAdmissionRejects(t *testing.T) {
	pred := newTestPredictor(t)
	s, err := New(Config{Pred: pred, Window: time.Hour, MaxInFlight: 1, MaxQueue: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	q := query{kind: "comp", dcomp: 1, cs: []core.Contender{{CommFraction: 0.2, MsgWords: 100}}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Fill the slot and the queue with two parked requests, then a third
	// must be rejected with ErrQueueFull.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Predict(ctx, q)
			errs <- err
		}()
	}
	deadline := time.Now().Add(time.Second)
	for s.adm.InFlight()+s.adm.Waiting() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("parked requests never admitted (inflight %d waiting %d)", s.adm.InFlight(), s.adm.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	_, err = s.Predict(ctx, q)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third request: %v, want ErrQueueFull", err)
	}
	<-errs
	<-errs
}

func TestServeClosedRejects(t *testing.T) {
	s, err := New(Config{Pred: newTestPredictor(t), Window: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Close()
	_, err = s.Predict(context.Background(),
		query{kind: "comp", dcomp: 1, cs: nil})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("predict after close: %v, want ErrClosed", err)
	}
}

func TestDecodeRejectsOversizedBody(t *testing.T) {
	big := bytes.Repeat([]byte("x"), MaxBodyBytes+100)
	body := `{"kind":"comp","dcomp":1,"contenders":[],"pad":"` + string(big) + `"}`
	if _, err := DecodeRequest(strings.NewReader(body)); err == nil {
		t.Fatal("oversized body accepted")
	}
}
