package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/runner"
)

// TestSoakConcurrentTrafficWithFaults drives the handler stack with
// concurrent mixed traffic while injecting wall-clock faults — seeded
// random flush stalls (a GC pause or scheduler hiccup in the batcher)
// and monitor sample loss on the residual feed — and mid-run drift that
// flips the tracker stale. It asserts the service stays live (every
// request gets an answer from the documented status set, no deadlock),
// that the batch queue depth stays within the admission bound, and —
// run under `go test -race` in the serve gate — that the handler,
// batcher, admission, and tracker paths are data-race-free.
func TestSoakConcurrentTrafficWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })

	const (
		workers     = 16
		perWorker   = 150
		maxInFlight = 32
		maxQueue    = 64
	)
	pred := newTestPredictor(t)
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatalf("tracker: %v", err)
	}
	s, err := New(Config{
		Pred:        pred,
		Tracker:     tracker,
		Pool:        runner.New(0),
		Window:      300 * time.Microsecond,
		MaxBatch:    32,
		MaxInFlight: maxInFlight,
		MaxQueue:    maxQueue,
		Timeout:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Fault: seeded random stalls at flush time, exercising the window
	// under latency spikes (requests keep arriving while a flush sleeps).
	var stallMu sync.Mutex
	stallRng := rand.New(rand.NewSource(99))
	var stalls atomic.Int64
	s.flushStall = func() {
		stallMu.Lock()
		hit := stallRng.Intn(10) == 0
		stallMu.Unlock()
		if hit {
			stalls.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}

	mux := s.Handler()
	rng := rand.New(rand.NewSource(7))
	mixes := newCorpus(rng, 12)
	bodies := make([]string, 512)
	for i := range bodies {
		bodies[i] = randomRequest(rng, mixes).body
	}

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusUnprocessableEntity: true,
		http.StatusTooManyRequests:     true,
		http.StatusGatewayTimeout:      true,
	}
	var (
		wg       sync.WaitGroup
		statuses [600]atomic.Int64
		bad      atomic.Int64
		firstBad atomic.Value
	)
	// Prediction traffic: workers hammer the handler directly (no TCP —
	// the subject under race test is our stack, not net/http plumbing).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < perWorker; i++ {
				body := bodies[lrng.Intn(len(bodies))]
				req := soakRequest(http.MethodPost, "/v1/predict", body)
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, req)
				code := rec.Code
				if code >= 0 && code < len(statuses) {
					statuses[code].Add(1)
				}
				if !allowed[code] {
					bad.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("status %d body %s resp %s", code, body, rec.Body.String()))
				}
			}
		}(w)
	}
	// Residual feed with sample loss: a monitor streams predicted vs
	// observed costs, dropping ~30% of samples, and shifts mid-run so
	// drift detection flips the tracker stale while traffic is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		lrng := rand.New(rand.NewSource(4242))
		for i := 0; i < 400; i++ {
			if lrng.Intn(10) < 3 {
				continue // monitor sample lost
			}
			observed := 1.0 + lrng.Float64()*0.02 // baseline residuals
			if i > 200 {
				observed = 3.0 + lrng.Float64()*0.1 // platform drifted
			}
			body := fmt.Sprintf(`{"predicted":1.0,"observed":%v}`, observed)
			req := soakRequest(http.MethodPost, "/v1/observe", body)
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				bad.Add(1)
				firstBad.CompareAndSwap(nil, fmt.Sprintf("observe status %d resp %s", rec.Code, rec.Body.String()))
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	// Health probes race the state transitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			req := soakRequest(http.MethodGet, "/healthz", "")
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("soak deadlocked: traffic did not drain within 2 minutes")
	}

	if n := bad.Load(); n > 0 {
		t.Fatalf("%d responses outside the documented status set; first: %v", n, firstBad.Load())
	}
	total := int64(0)
	for code := range statuses {
		if n := statuses[code].Load(); n > 0 {
			total += n
			t.Logf("status %d: %d", code, n)
		}
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("answered %d of %d requests", total, want)
	}
	if statuses[http.StatusOK].Load() == 0 {
		t.Fatal("no request succeeded under fault load")
	}
	if tracker.State() == caltrust.Fresh {
		t.Fatal("drift shift never flipped the tracker despite sample loss")
	}
	t.Logf("flush stalls injected: %d; tracker: %v (%s)", stalls.Load(), tracker.State(), tracker.Reason())

	snap := obs.Default().Snapshot()
	if depth := snap.Gauge(obs.MetricServeQueueDepthMax); depth > maxInFlight {
		t.Fatalf("batcher queue depth peaked at %v, above the %d admission bound", depth, maxInFlight)
	}
	if s.adm.InFlight() != 0 || s.adm.Waiting() != 0 {
		t.Fatalf("admission leaked: in-flight %d waiting %d", s.adm.InFlight(), s.adm.Waiting())
	}
}

// TestSoakCloseUnderLoad closes the server while requests are in
// flight: in-flight requests must still be answered (or rejected with a
// documented status), and the Close call itself must not deadlock.
func TestSoakCloseUnderLoad(t *testing.T) {
	pred := newTestPredictor(t)
	s, err := New(Config{Pred: pred, Window: 500 * time.Microsecond, Timeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mux := s.Handler()
	rng := rand.New(rand.NewSource(3))
	mixes := newCorpus(rng, 4)
	body := randomRequest(rng, mixes).body

	var wg sync.WaitGroup
	var bad atomic.Int64
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				req := soakRequest(http.MethodPost, "/v1/predict", body)
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK, http.StatusServiceUnavailable,
					http.StatusTooManyRequests, http.StatusGatewayTimeout:
				default:
					bad.Add(1)
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked under load")
	}
	wg.Wait()
	if n := bad.Load(); n > 0 {
		t.Fatalf("%d responses outside {200, 503, 429, 504} during shutdown", n)
	}
	// After Close, the typed path reports ErrClosed.
	q := query{kind: "comp", dcomp: 1, cs: []core.Contender{{CommFraction: 0.2, MsgWords: 10}}}
	if _, err := s.Predict(t.Context(), q); err == nil {
		t.Fatal("Predict after Close succeeded")
	}
}

// soakRequest builds an in-memory request for direct mux dispatch.
func soakRequest(method, target, body string) *http.Request {
	if body == "" {
		return httptest.NewRequest(method, target, nil)
	}
	return httptest.NewRequest(method, target, strings.NewReader(body))
}
