package serve

import "contention/internal/core"

// SyntheticCalibration is a built-in Sun/Paragon-shaped calibration the
// daemon falls back to when no stored artifact is supplied (and the
// load/soak harnesses use so they need no calibration run at startup).
// The numbers are modeled on the paper's measured tables: delay tables
// monotone non-decreasing in contender count, a piecewise comm model
// with the 1024-word knee, and delay^{i,j} columns for the calibrated
// j ∈ {1, 500, 1000}. It passes both core validation and the caltrust
// strict invariant checks.
func SyntheticCalibration() core.Calibration {
	return core.Calibration{
		Platform: "synthetic-sun-paragon",
		ToBack: core.CommModel{
			Threshold: 1024,
			Small:     core.CommPiece{Alpha: 1.4e-3, Beta: 0.61e6},
			Large:     core.CommPiece{Alpha: 1.8e-3, Beta: 1.23e6},
		},
		ToHost: core.CommModel{
			Threshold: 1024,
			Small:     core.CommPiece{Alpha: 1.6e-3, Beta: 0.58e6},
			Large:     core.CommPiece{Alpha: 2.1e-3, Beta: 1.19e6},
		},
		Tables: core.DelayTables{
			CompOnComm: []float64{0.31, 0.58, 0.83, 1.05, 1.26, 1.45, 1.63, 1.80},
			CommOnComm: []float64{0.92, 1.79, 2.61, 3.38, 4.11, 4.80, 5.45, 6.07},
			CommOnComp: map[int][]float64{
				1:    {0.08, 0.15, 0.21, 0.27, 0.32, 0.37, 0.41, 0.45},
				500:  {0.55, 1.04, 1.48, 1.89, 2.27, 2.62, 2.95, 3.26},
				1000: {0.88, 1.68, 2.41, 3.08, 3.70, 4.28, 4.82, 5.33},
			},
		},
	}
}
