// Request tracing and per-stage latency attribution.
//
// Every request — sampled or not — times its pipeline stages (decode,
// admission, batch-wait, compute/surface, encode) into per-stage
// histograms, so aggregate attribution is always available: when p99
// moves, the stage histograms say whether the time went to the codec,
// the admission gate, batch rendezvous, or the model itself. This
// mirrors the paper's methodology of decomposing total execution time
// into per-resource contention terms, applied to the serving path.
//
// Sampled requests additionally produce a span tree on the process-wide
// tracer: a "request" root span plus one child span per stage, all
// carrying the trace id from the obs.TraceContext that arrived with the
// request (HTTP header or binary trace block) or was minted by the
// server's head sampler. The unsampled path allocates nothing: the
// request trace handle is a nil pointer and every method on it no-ops.
package serve

import (
	"errors"
	"net/http"
	"time"

	"contention/internal/obs"
)

// TraceHeader carries the compact trace context (16-hex trace id,
// 16-hex parent span id, 2-hex flags, dash-separated — see
// obs.ParseTraceContext) across process hops. The binary wire format
// can carry the same context in-band via its trace flag; when both are
// present the in-band block wins.
const TraceHeader = "X-Contention-Trace"

// RequestIDHeader names the request-correlation header: echoed back
// when the client sent one, minted by the server on error responses so
// every failure is correlatable even for clients that did not ask.
const RequestIDHeader = "X-Request-Id"

// Per-stage latency attribution, one histogram per pipeline stage.
var mStageSeconds = obs.NewHistogramVec(obs.MetricServeStageSeconds,
	"per-stage request latency in seconds", "stage", obs.DefaultSecondsBuckets())

var (
	stDecode    = mStageSeconds.With("decode")
	stAdmission = mStageSeconds.With("admission")
	stBatchWait = mStageSeconds.With("batch-wait")
	stCompute   = mStageSeconds.With("compute")
	stSurface   = mStageSeconds.With("surface")
	stEncode    = mStageSeconds.With("encode")
)

var mTraceSampled = obs.NewCounter(obs.MetricTraceSampled,
	"requests that carried or started a sampled trace")

// reqTrace is one sampled request's tracing handle. A nil *reqTrace is
// the unsampled case: every method no-ops, so call sites need no guards
// and the warm path stays allocation-free.
type reqTrace struct {
	root *obs.Span
	// tc is the root span's context — the parent for stage spans and the
	// context to propagate downstream.
	tc obs.TraceContext
}

// requestTrace decides a request's trace participation. An in-band
// context (binary trace block) wins over the trace header; a valid
// upstream context is honored verbatim, including a negative sampling
// verdict — re-sampling downstream would produce orphan subtrees.
// Only headless requests consult the server's own sampler.
func (s *Server) requestTrace(r *http.Request, inband obs.TraceContext) *reqTrace {
	tc := inband
	if !tc.Valid() {
		var ok bool
		tc, ok = obs.ParseTraceContext(r.Header.Get(TraceHeader))
		if !ok {
			if !s.cfg.Sampler.Sample() {
				return nil
			}
			tc = obs.NewRootContext(true)
		}
	}
	if !tc.Sampled {
		return nil
	}
	root, child := obs.DefaultTracer().StartCtx("serve", "request", tc)
	if root == nil {
		// Telemetry disabled: propagation still happened upstream, but
		// this process records nothing.
		return nil
	}
	mTraceSampled.Inc()
	return &reqTrace{root: root, tc: child}
}

// stage records one finished pipeline stage as a child span of the
// request's root. Stage boundaries are timed with time.Now either way
// (the histograms want them); this just promotes the interval to a span
// when the request is sampled.
func (rt *reqTrace) stage(name string, start, end time.Time) {
	if rt == nil {
		return
	}
	obs.DefaultTracer().RecordSpan("serve", name, obs.SinceStart(start), obs.SinceStart(end), rt.tc)
}

// end closes the root request span.
func (rt *reqTrace) end() {
	if rt != nil {
		rt.root.End()
	}
}

// newRequestID mints a 16-hex request id for error responses whose
// client did not send X-Request-Id.
func newRequestID() string { return obs.HexID(obs.NewID()) }

// recordSLO feeds one finished request into the SLO tracker. Client
// errors (4xx RequestError) are excluded from both SLIs — a malformed
// request burns no server error budget.
func (s *Server) recordSLO(start time.Time, err error) {
	if s.cfg.SLO == nil {
		return
	}
	if err != nil {
		// errors.As makes its target escape, so it only runs on the
		// error path — the success path must stay allocation-free.
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			return
		}
	}
	s.cfg.SLO.Record(time.Since(start).Seconds(), err == nil)
}
