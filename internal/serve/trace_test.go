package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"contention/internal/core"
	"contention/internal/obs"
	"contention/internal/surface"
)

// withTracing enables telemetry and clears the process tracer for one
// test, restoring both afterwards.
func withTracing(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.DefaultTracer().Reset()
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.DefaultTracer().Reset()
	})
}

// spansForTrace filters the process tracer down to one trace id.
func spansForTrace(tc obs.TraceContext) []obs.SpanRecord {
	want := obs.HexID(tc.TraceID)
	var out []obs.SpanRecord
	for _, s := range obs.DefaultTracer().Spans() {
		if s.Trace == want {
			out = append(out, s)
		}
	}
	return out
}

const compBody = `{"kind":"comp","dcomp":2.5,"contenders":[{"comm_fraction":0.3,"msg_words":500}]}`

// TestTraceSpanTreeFromHeader pins the serve-side span tree: a sampled
// X-Contention-Trace header produces a "request" root span parented to
// the caller's span, with every stage span a child of that root — the
// linkage the cross-process timeline depends on.
func TestTraceSpanTreeFromHeader(t *testing.T) {
	withTracing(t)
	_, ts := newTestServer(t, Config{Window: -1})
	up := obs.TraceContext{TraceID: 0xabc, SpanID: 0xdef, Sampled: true}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(compBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, up.String())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	spans := spansForTrace(up)
	var root obs.SpanRecord
	for _, s := range spans {
		if s.Actor == "serve" && s.Name == "request" {
			root = s
		}
	}
	if root.Span == "" {
		t.Fatalf("no serve/request root span in %+v", spans)
	}
	if root.Parent != obs.HexID(up.SpanID) {
		t.Fatalf("root parent = %q, want caller span %q", root.Parent, obs.HexID(up.SpanID))
	}
	stages := map[string]bool{}
	for _, s := range spans {
		if s == root {
			continue
		}
		if s.Parent != root.Span {
			t.Errorf("stage span %s/%s parent = %q, want root %q", s.Actor, s.Name, s.Parent, root.Span)
		}
		stages[s.Name] = true
	}
	for _, want := range []string{"decode", "admission", "encode"} {
		if !stages[want] {
			t.Errorf("stage %q missing from span tree %v", want, stages)
		}
	}
}

// TestTraceUpstreamVerdictHonored pins head-based sampling: a valid
// but unsampled upstream context must suppress recording even when the
// local sampler would have said yes, and must not be re-rooted.
func TestTraceUpstreamVerdictHonored(t *testing.T) {
	withTracing(t)
	_, ts := newTestServer(t, Config{Window: -1, Sampler: obs.NewSampler(1)})
	up := obs.TraceContext{TraceID: 0x777, SpanID: 0x8, Sampled: false}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(compBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, up.String())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Operational spans (batch-flush etc.) are fine; nothing may carry a
	// trace id, and no request root may exist.
	for _, s := range obs.DefaultTracer().Spans() {
		if s.Trace != "" || s.Name == "request" {
			t.Fatalf("unsampled request recorded span %+v", s)
		}
	}

	// A headless request through the same server IS sampled (fresh root,
	// no parent) — proving the sampler works and only the upstream
	// verdict suppressed the first request.
	code, _ := post(t, ts.Client(), ts.URL+"/v1/predict", compBody)
	if code != http.StatusOK {
		t.Fatalf("headless status %d", code)
	}
	spans := obs.DefaultTracer().Spans()
	var root *obs.SpanRecord
	for i, s := range spans {
		if s.Name == "request" {
			root = &spans[i]
		}
	}
	if root == nil || root.Trace == "" || root.Parent != "" {
		t.Fatalf("headless sampled request: want fresh parentless root, got %+v", spans)
	}
}

// TestTraceBinaryInBandWinsOverHeader pins the precedence rule: when a
// binary request carries both an in-band trace block and a trace
// header, the in-band context wins.
func TestTraceBinaryInBandWinsOverHeader(t *testing.T) {
	withTracing(t)
	_, ts := newTestServer(t, Config{Window: -1})
	d := 2.5
	wire := &Request{Kind: "comp", Dcomp: &d,
		Contenders: []ContenderSpec{{CommFraction: 0.3, MsgWords: 500}}}
	inband := obs.TraceContext{TraceID: 0x1111, SpanID: 0x2, Sampled: true}
	header := obs.TraceContext{TraceID: 0x9999, SpanID: 0x3, Sampled: true}
	payload, err := AppendBinaryRequestTraced(nil, wire, inband)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/predict", bytes.NewReader(payload))
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set(TraceHeader, header.String())
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := spansForTrace(header); len(got) != 0 {
		t.Fatalf("header trace recorded %d spans, in-band should have won: %+v", len(got), got)
	}
	spans := spansForTrace(inband)
	foundRoot := false
	for _, s := range spans {
		if s.Name == "request" && s.Parent == obs.HexID(inband.SpanID) {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatalf("no root parented to the in-band context in %+v", spans)
	}
}

// TestBinaryTraceBlockRoundTrip pins the in-band encoding at the
// decoder level, plus its fail-closed rejections: truncation, a zero
// trace id, and unknown flag bits are typed 4xx errors.
func TestBinaryTraceBlockRoundTrip(t *testing.T) {
	d := 2.5
	wire := &Request{Kind: "comp", Dcomp: &d,
		Contenders: []ContenderSpec{{CommFraction: 0.3, MsgWords: 500}}}
	tc := obs.TraceContext{TraceID: 0xdeadbeef, SpanID: 0xcafe, Sampled: true}

	traced, err := AppendBinaryRequestTraced(nil, wire, tc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AppendBinaryRequest(nil, wire)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := AppendBinaryRequestTraced(nil, wire, obs.TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, zero) {
		t.Fatal("zero trace context must encode identically to the untraced request")
	}

	decode := func(payload []byte) (*binReq, error) {
		br := new(binReq)
		if err := br.readBody(bytes.NewReader(payload)); err != nil {
			return nil, err
		}
		return br, br.decode()
	}

	br, err := decode(traced)
	if err != nil {
		t.Fatal(err)
	}
	if br.tc != tc {
		t.Fatalf("decoded trace context %+v, want %+v", br.tc, tc)
	}
	if br, err := decode(plain); err != nil || br.tc.Valid() {
		t.Fatalf("untraced request: err=%v tc=%+v, want zero context", err, br.tc)
	}

	// Payload layout: [0:4] length prefix, [4] version, [5] kind,
	// [6] flags, [7] count, [8:25] trace block (id, span, flags).
	corrupt := func(name string, mutate func(b []byte), wantMsg string) {
		b := append([]byte(nil), traced...)
		mutate(b)
		_, err := decode(b)
		var reqErr *RequestError
		if err == nil || !errors.As(err, &reqErr) {
			t.Fatalf("%s: err = %v, want 4xx RequestError", name, err)
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Errorf("%s: err %q does not mention %q", name, err, wantMsg)
		}
	}
	corrupt("zero trace id", func(b []byte) {
		for i := 8; i < 16; i++ {
			b[i] = 0
		}
	}, "zero trace id")
	corrupt("unknown trace flags", func(b []byte) { b[24] |= 0x02 }, "unknown trace flags")

	// Truncated block: header declares a trace block but the payload
	// ends inside it.
	short := []byte{0, 0, 0, 0, binVersion, binKindComp, binFlagTrace, 0, 1, 2, 3}
	short[0] = byte(len(short) - 4)
	if _, err := decode(short); err == nil || !strings.Contains(err.Error(), "trace block truncated") {
		t.Fatalf("truncated trace block: err = %v", err)
	}
}

var hexIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDCorrelation pins the request-id satellite: a client id
// is echoed on success and failure (header and error body), and error
// responses without one get a minted 16-hex id so every failure is
// correlatable.
func TestRequestIDCorrelation(t *testing.T) {
	_, ts := newTestServer(t, Config{Window: -1})

	do := func(body, rid string) *http.Response {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/predict", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if rid != "" {
			req.Header.Set(RequestIDHeader, rid)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Success with a client id: echoed in the header.
	resp := do(compBody, "req-abc-123")
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(RequestIDHeader) != "req-abc-123" {
		t.Fatalf("success echo: status %d header %q", resp.StatusCode, resp.Header.Get(RequestIDHeader))
	}

	// Error with a client id: echoed in header AND body.
	resp = do(`{"kind":"nope"}`, "req-err-7")
	var envelope struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || envelope.Error == "" {
		t.Fatalf("error status %d envelope %+v", resp.StatusCode, envelope)
	}
	if envelope.RequestID != "req-err-7" || resp.Header.Get(RequestIDHeader) != "req-err-7" {
		t.Fatalf("client id not echoed: body %q header %q", envelope.RequestID, resp.Header.Get(RequestIDHeader))
	}

	// Error without a client id: minted, same id in header and body.
	resp = do(`{"kind":"nope"}`, "")
	envelope = struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}{}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if !hexIDRe.MatchString(envelope.RequestID) {
		t.Fatalf("minted id %q is not 16 hex digits", envelope.RequestID)
	}
	if resp.Header.Get(RequestIDHeader) != envelope.RequestID {
		t.Fatalf("header id %q != body id %q", resp.Header.Get(RequestIDHeader), envelope.RequestID)
	}
}

// rewindBody is a resettable no-alloc request body for the warm-path pin.
type rewindBody struct{ *bytes.Reader }

func (rewindBody) Close() error { return nil }

// TestUnsampledWarmPathAllocationFree is the tentpole's allocation
// contract: with telemetry enabled, tracing compiled in, an SLO tracker
// attached, and sampling OFF, the binary surface fast path must stay at
// zero allocations per request — attribution histograms, trace
// bookkeeping, and SLO recording all ride atomics.
func TestUnsampledWarmPathAllocationFree(t *testing.T) {
	withTracing(t)
	cal := SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	surf, err := surface.Build(cal.Tables, surface.Config{MaxContenders: 16, GridCells: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.AttachSurface(surf); err != nil {
		t.Fatal(err)
	}
	slo, err := obs.NewSLOTracker(obs.SLOConfig{LatencyThresholdSeconds: 0.1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pred: pred, Window: -1, FastPath: true, SLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	d := 2.5
	payload, err := AppendBinaryRequest(nil, &Request{Kind: "comp", Dcomp: &d,
		Contenders: []ContenderSpec{{CommFraction: 0.25, MsgWords: 500}, {CommFraction: 0.25, MsgWords: 500}}})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(payload)
	req := httptest.NewRequest("POST", "/v1/predict", nil)
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Body = rewindBody{rd}
	br := new(binReq)

	// Warm up and confirm this request actually takes the fast path.
	rd.Reset(payload)
	resp, rt, err := s.servePredictBinary(br, req)
	if err != nil || !resp.Fast {
		t.Fatalf("warmup: err=%v fast=%v — pin needs the surface fast path", err, resp.Fast)
	}
	if rt != nil {
		t.Fatal("unsampled request produced a trace handle")
	}

	start := time.Now()
	if allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		resp, rt, err := s.servePredictBinary(br, req)
		if err != nil || !resp.Fast || rt != nil {
			t.Fatalf("err=%v fast=%v rt=%v", err, resp.Fast, rt)
		}
		s.recordSLO(start, nil)
		br.out = appendBinaryResponse(br.out[:0], resp)
	}); allocs != 0 {
		t.Fatalf("unsampled warm path allocates %.1f objects/op with tracing compiled in, want 0", allocs)
	}

	if got := obs.DefaultTracer().Spans(); len(got) != 0 {
		t.Fatalf("unsampled warm path recorded %d spans", len(got))
	}
}

// TestTracingNoGoroutineLeak drives sampled and unsampled traffic
// through a batching server and checks shutdown returns the process to
// its starting goroutine count — the tracing path must not spawn or
// strand goroutines.
func TestTracingNoGoroutineLeak(t *testing.T) {
	withTracing(t)
	before := runtime.NumGoroutine()

	s, err := New(Config{Pred: newTestPredictor(t), Window: 200 * time.Microsecond,
		Sampler: obs.NewSampler(2)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for i := 0; i < 40; i++ {
		code, _ := post(t, ts.Client(), ts.URL+"/v1/predict", compBody)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	ts.Close()
	s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
