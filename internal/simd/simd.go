// Package simd models a CM2-style SIMD back-end. The back-end never
// runs a program on its own: a front-end process feeds it parallel
// instructions through a single sequencer, executing the serial and
// scalar parts of the program itself (on the front-end CPU). Because
// there is only one sequencer, at most one application can use the
// back-end at a time — the paper's reason why all Sun/CM2 contention is
// CPU contention on the Sun.
//
// Instructions are buffered in a bounded FIFO, which lets the front-end
// pre-execute serial code while the back-end works (the overlap visible
// in the paper's Figure 2) and gives rise to the elapsed-time law
// T_cm2 = max(dcomp_cm2 + didle_cm2, dserial_cm2 × slowdown).
package simd

import (
	"fmt"

	"contention/internal/des"
)

// Backend is the SIMD machine: a sequencer plus execution engine.
type Backend struct {
	k         *des.Kernel
	name      string
	sequencer *des.Semaphore

	totalBusy float64
	sessions  int
}

// NewBackend returns an idle back-end.
func NewBackend(k *des.Kernel, name string) *Backend {
	return &Backend{k: k, name: name, sequencer: des.NewSemaphore(k, 1)}
}

// Name reports the back-end name.
func (b *Backend) Name() string { return b.name }

// TotalBusy reports cumulative instruction-execution time across all sessions.
func (b *Backend) TotalBusy() float64 { return b.totalBusy }

// Sessions reports how many sessions have been opened.
func (b *Backend) Sessions() int { return b.sessions }

// Session is one application's exclusive attachment to the sequencer.
type Session struct {
	b       *Backend
	app     string
	fifoCap int
	slots   *des.Semaphore // free FIFO slots

	queue       []float64 // pending instruction durations
	executing   bool
	outstanding int
	syncWaiters []*des.Proc

	start    float64
	busy     float64
	issued   int
	detached bool

	intervals []Interval
}

// Interval is one contiguous stretch of back-end execution.
type Interval struct {
	Start, End float64
}

// Attach acquires the sequencer for an application, blocking p until the
// back-end is free. fifoCap bounds the number of in-flight instructions
// (≥1); it models the depth of the instruction pipeline between the
// front-end and the back-end.
func (b *Backend) Attach(p *des.Proc, app string, fifoCap int) *Session {
	if fifoCap < 1 {
		panic(fmt.Sprintf("simd: fifo capacity %d must be ≥ 1", fifoCap))
	}
	b.sequencer.Acquire(p)
	b.sessions++
	return &Session{
		b:       b,
		app:     app,
		fifoCap: fifoCap,
		slots:   des.NewSemaphore(b.k, fifoCap),
		start:   p.Now(),
	}
}

// Issue sends one parallel instruction with the given dedicated-mode
// execution duration to the back-end. It blocks p only when the
// instruction FIFO is full.
func (s *Session) Issue(p *des.Proc, dur float64) {
	if s.detached {
		panic("simd: Issue after Detach")
	}
	if dur < 0 {
		panic(fmt.Sprintf("simd: negative instruction duration %v", dur))
	}
	s.slots.Acquire(p) // back-pressure when the FIFO is full
	s.queue = append(s.queue, dur)
	s.outstanding++
	s.issued++
	s.startNext()
}

// startNext begins executing the head instruction if the engine is idle.
func (s *Session) startNext() {
	if s.executing || len(s.queue) == 0 {
		return
	}
	s.executing = true
	dur := s.queue[0]
	s.queue = s.queue[1:]
	begin := s.b.k.Now()
	s.b.k.After(dur, func() {
		s.intervals = append(s.intervals, Interval{Start: begin, End: begin + dur})
		s.busy += dur
		s.b.totalBusy += dur
		s.executing = false
		s.outstanding--
		s.slots.Release()
		if s.outstanding == 0 {
			waiters := s.syncWaiters
			s.syncWaiters = nil
			for _, w := range waiters {
				w.Resume()
			}
		}
		s.startNext()
	})
}

// Sync blocks p until every issued instruction has completed — the
// front-end waiting for a result (e.g. a reduction) in Figure 2.
func (s *Session) Sync(p *des.Proc) {
	if s.outstanding == 0 {
		return
	}
	s.syncWaiters = append(s.syncWaiters, p)
	p.Park()
}

// Detach synchronizes, releases the sequencer, and freezes the session
// statistics. The session must not be used afterwards.
func (s *Session) Detach(p *des.Proc) {
	if s.detached {
		return
	}
	s.Sync(p)
	s.detached = true
	s.b.sequencer.Release()
}

// BusyTime reports time spent executing instructions in this session.
func (s *Session) BusyTime() float64 { return s.busy }

// IdleTime reports back-end idle time within the session so far: elapsed
// session time minus execution time. After Detach it is the paper's
// didle_cm2 for a dedicated run.
func (s *Session) IdleTime(now float64) float64 {
	idle := (now - s.start) - s.busy
	if idle < 0 {
		return 0
	}
	return idle
}

// Issued reports the number of instructions issued in this session.
func (s *Session) Issued() int { return s.issued }

// Outstanding reports instructions issued but not yet completed.
func (s *Session) Outstanding() int { return s.outstanding }

// Intervals returns the back-end execution intervals recorded so far —
// the raw material of the paper's Figure 2 timeline.
func (s *Session) Intervals() []Interval {
	return append([]Interval(nil), s.intervals...)
}
