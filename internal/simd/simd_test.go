package simd

import (
	"math"
	"testing"

	"contention/internal/cpu"
	"contention/internal/des"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestInstructionsExecuteInOrder(t *testing.T) {
	k := des.New()
	b := NewBackend(k, "cm2")
	var end float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 4)
		s.Issue(p, 1)
		s.Issue(p, 2)
		s.Issue(p, 3)
		s.Detach(p)
		end = p.Now()
	})
	k.Run()
	if !approx(end, 6, 1e-9) {
		t.Fatalf("finished at %v, want 6 (sequential execution)", end)
	}
	if got := b.TotalBusy(); !approx(got, 6, 1e-9) {
		t.Fatalf("TotalBusy = %v, want 6", got)
	}
}

func TestFrontEndOverlapsWithBackend(t *testing.T) {
	// Serial work on the host overlaps with back-end execution: total
	// elapsed = max(serial, parallel) when the FIFO absorbs the issue.
	k := des.New()
	host := cpu.NewHost(k, "sun", 1)
	b := NewBackend(k, "cm2")
	var end float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 8)
		s.Issue(p, 5)      // back-end busy 5s
		host.Compute(p, 2) // front-end serial work runs concurrently
		s.Detach(p)        // waits for the back-end
		end = p.Now()
	})
	k.Run()
	if !approx(end, 5, 1e-9) {
		t.Fatalf("finished at %v, want 5 (overlap)", end)
	}
}

func TestFIFOBackPressure(t *testing.T) {
	// Capacity-1 FIFO: the second Issue must wait for the first to finish.
	k := des.New()
	b := NewBackend(k, "cm2")
	var issuedAt []float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 1)
		s.Issue(p, 2)
		issuedAt = append(issuedAt, p.Now())
		s.Issue(p, 2) // blocks until t=2
		issuedAt = append(issuedAt, p.Now())
		s.Detach(p)
	})
	k.Run()
	if !approx(issuedAt[0], 0, 1e-9) || !approx(issuedAt[1], 2, 1e-9) {
		t.Fatalf("issue times %v, want [0 2]", issuedAt)
	}
}

func TestSyncWaitsForOutstanding(t *testing.T) {
	k := des.New()
	b := NewBackend(k, "cm2")
	var syncAt float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 4)
		s.Issue(p, 3)
		s.Issue(p, 4)
		s.Sync(p)
		syncAt = p.Now()
		s.Detach(p)
	})
	k.Run()
	if !approx(syncAt, 7, 1e-9) {
		t.Fatalf("sync completed at %v, want 7", syncAt)
	}
}

func TestSyncWithNothingOutstandingReturnsImmediately(t *testing.T) {
	k := des.New()
	b := NewBackend(k, "cm2")
	var at float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 4)
		s.Sync(p)
		at = p.Now()
		s.Detach(p)
	})
	k.Run()
	if at != 0 {
		t.Fatalf("sync at %v, want 0", at)
	}
}

func TestSequencerExcludesSecondApplication(t *testing.T) {
	// Only one app can hold the sequencer: the second attach waits.
	k := des.New()
	b := NewBackend(k, "cm2")
	var startB float64
	k.Spawn("app1", func(p *des.Proc) {
		s := b.Attach(p, "app1", 2)
		s.Issue(p, 5)
		s.Detach(p)
	})
	k.Spawn("app2", func(p *des.Proc) {
		p.Delay(1)
		s := b.Attach(p, "app2", 2)
		startB = p.Now()
		s.Issue(p, 1)
		s.Detach(p)
	})
	k.Run()
	if !approx(startB, 5, 1e-9) {
		t.Fatalf("second app attached at %v, want 5 (sequencer exclusion)", startB)
	}
	if b.Sessions() != 2 {
		t.Fatalf("Sessions = %d, want 2", b.Sessions())
	}
}

func TestIdleTimeAccounting(t *testing.T) {
	k := des.New()
	host := cpu.NewHost(k, "sun", 1)
	b := NewBackend(k, "cm2")
	var idle, busy float64
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 4)
		host.Compute(p, 3) // back-end idle for 3s
		s.Issue(p, 2)      // busy 2s
		s.Detach(p)
		idle = s.IdleTime(p.Now())
		busy = s.BusyTime()
	})
	k.Run()
	if !approx(busy, 2, 1e-9) {
		t.Fatalf("BusyTime = %v, want 2", busy)
	}
	if !approx(idle, 3, 1e-9) {
		t.Fatalf("IdleTime = %v, want 3", idle)
	}
}

func TestIssuedAndOutstandingCounters(t *testing.T) {
	k := des.New()
	b := NewBackend(k, "cm2")
	k.Spawn("fe", func(p *des.Proc) {
		s := b.Attach(p, "app", 4)
		s.Issue(p, 1)
		s.Issue(p, 1)
		if s.Issued() != 2 {
			t.Errorf("Issued = %d, want 2", s.Issued())
		}
		if s.Outstanding() == 0 {
			t.Error("Outstanding = 0 right after issue")
		}
		s.Sync(p)
		if s.Outstanding() != 0 {
			t.Errorf("Outstanding = %d after Sync, want 0", s.Outstanding())
		}
		s.Detach(p)
	})
	k.Run()
}

func TestMisusePanics(t *testing.T) {
	k := des.New()
	b := NewBackend(k, "cm2")
	k.Spawn("fe", func(p *des.Proc) {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Attach with fifoCap 0 did not panic")
				}
			}()
			b.Attach(p, "bad", 0)
		}()
		s := b.Attach(p, "app", 2)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative duration did not panic")
				}
			}()
			s.Issue(p, -1)
		}()
		s.Detach(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Issue after Detach did not panic")
				}
			}()
			s.Issue(p, 1)
		}()
		s.Detach(p) // double detach is a no-op
	})
	k.Run()
}

func TestMaxLawEmergesFromPipeline(t *testing.T) {
	// A program alternating serial (host) and parallel (back-end) work.
	// With a generous FIFO, elapsed ≈ max(total parallel, total serial)
	// when one side dominates.
	run := func(serialPer, parallelPer float64, steps int, hogs int) float64 {
		k := des.New()
		host := cpu.NewHost(k, "sun", 1)
		b := NewBackend(k, "cm2")
		var end float64
		k.Spawn("fe", func(p *des.Proc) {
			s := b.Attach(p, "app", 16)
			for i := 0; i < steps; i++ {
				host.Compute(p, serialPer)
				s.Issue(p, parallelPer)
			}
			s.Detach(p)
			end = p.Now()
		})
		for i := 0; i < hogs; i++ {
			k.Spawn("hog", func(p *des.Proc) { host.Compute(p, 1e9) })
		}
		k.RunUntil(1e8)
		return end
	}

	// Parallel-dominated, dedicated: elapsed ≈ serial_1 + total parallel.
	if got := run(0.1, 1.0, 10, 0); !approx(got, 10.1, 0.2) {
		t.Fatalf("parallel-dominated elapsed = %v, want ≈ 10.1", got)
	}
	// Serial-dominated with 3 hogs: elapsed ≈ total serial × 4.
	if got := run(1.0, 0.1, 10, 3); !approx(got, 40.1, 0.5) {
		t.Fatalf("serial-dominated contended elapsed = %v, want ≈ 40.1", got)
	}
}
