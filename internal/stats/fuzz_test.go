package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes decodes data into a bounded slice of finite floats in
// a calibration-plausible range, so the fuzzer explores fit geometry
// rather than IEEE754 corner encodings (those are screened separately).
func floatsFromBytes(data []byte, max int) []float64 {
	out := make([]float64, 0, max)
	for len(data) >= 8 && len(out) < max {
		u := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		// Map onto [-1e6, 1e6] deterministically.
		v := float64(int64(u%2_000_001)) - 1e6
		out = append(out, v/1.0)
	}
	return out
}

// FuzzFitPiecewise asserts the piecewise fitter never panics and, when
// it claims success, returns a model with finite parameters and finite
// residuals over its own input.
func FuzzFitPiecewise(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 6*16)
	for _, v := range []uint64{1, 2, 3, 100, 2000, 1_500_000, 7, 7, 9, 1_999_999, 0, 42} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		seed = append(seed, b[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := floatsFromBytes(data, 64)
		n := len(vals) / 2
		xs, ys := vals[:n], vals[n:2*n]
		fit, err := FitPiecewise(xs, ys)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		for _, v := range []float64{fit.Threshold, fit.RMSE,
			fit.Small.Intercept, fit.Small.Slope, fit.Large.Intercept, fit.Large.Slope} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite fit parameter %v in %+v", v, fit)
			}
		}
		for i := range xs {
			r := ys[i] - fit.Predict(xs[i])
			if math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("non-finite residual at x=%v: %+v", xs[i], fit)
			}
		}
	})
}
