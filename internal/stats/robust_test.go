package stats

import (
	"math"
	"testing"
)

// TestMedianDoesNotMutateInput is the regression test for the trust
// layer's contract: order statistics must never sort the caller's
// sample buffer in place (the calibration suite reuses its buffers
// across aggregation passes).
func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	want := append([]float64(nil), xs...)
	_ = Median(xs)
	_ = MAD(xs)
	if _, err := Quantile(xs, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, err := TrimmedMean(xs, 0.2); err != nil {
		t.Fatal(err)
	}
	_, _ = RejectOutliersMAD(xs, 3)
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("input mutated at %d: %v, want %v", i, xs, want)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got, err := Quantile([]float64{1, 2}, 0.5); err != nil || !approx(got, 1.5, 1e-12) {
		t.Fatalf("interpolated Quantile = %v (%v), want 1.5", got, err)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("Quantile(nil) did not error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile(q=1.5) did not error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Fatal("Quantile(q=NaN) did not error")
	}
}

func TestTrimmedMean(t *testing.T) {
	// One gross outlier in ten samples: a 10% trim per tail removes it.
	xs := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 1000}
	got, err := TrimmedMean(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 10, 1e-12) {
		t.Fatalf("TrimmedMean = %v, want 10", got)
	}
	// trim = 0 is the plain mean.
	got, err = TrimmedMean(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, Mean(xs), 1e-12) {
		t.Fatalf("TrimmedMean(0) = %v, want %v", got, Mean(xs))
	}
	if _, err := TrimmedMean(nil, 0.1); err == nil {
		t.Fatal("TrimmedMean(nil) did not error")
	}
	if _, err := TrimmedMean(xs, 0.5); err == nil {
		t.Fatal("TrimmedMean(trim=0.5) did not error")
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]float64{1, 1, 2, 2, 4, 6, 9}); !approx(got, 1, 1e-12) {
		t.Fatalf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); got != 0 {
		t.Fatalf("MAD(nil) = %v, want 0", got)
	}
	// MAD is immune to a single arbitrarily large outlier.
	if got := MAD([]float64{10, 10.1, 9.9, 10, 1e9}); got > 0.2 {
		t.Fatalf("MAD with outlier = %v, want small", got)
	}
}

func TestRejectOutliersMAD(t *testing.T) {
	xs := []float64{10, 10.1, 9.9, 10.05, 9.95, 50}
	kept, rejected := RejectOutliersMAD(xs, 3.5)
	if rejected != 1 || len(kept) != 5 {
		t.Fatalf("rejected %d kept %d, want 1/5", rejected, len(kept))
	}
	for _, x := range kept {
		if x == 50 {
			t.Fatal("outlier survived rejection")
		}
	}
	// Identical samples: zero MAD keeps everything.
	same := []float64{3, 3, 3, 3}
	kept, rejected = RejectOutliersMAD(same, 3.5)
	if rejected != 0 || len(kept) != 4 {
		t.Fatalf("zero-MAD rejection: rejected %d kept %d, want 0/4", rejected, len(kept))
	}
}

func TestBootstrap(t *testing.T) {
	xs := []float64{9.8, 10.1, 10.0, 9.9, 10.2, 10.0, 9.7, 10.3, 10.05, 9.95}
	iv, err := Bootstrap(xs, Mean, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(10.0) {
		t.Fatalf("95%% CI %+v does not contain the true mean", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 1 {
		t.Fatalf("CI width %v implausible for sd≈0.18 n=10", iv.Width())
	}
	// Deterministic: same seed, same interval.
	iv2, err := Bootstrap(xs, Mean, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv != iv2 {
		t.Fatalf("Bootstrap not deterministic: %+v vs %+v", iv, iv2)
	}
	if _, err := Bootstrap(nil, Mean, 100, 0.95, 1); err == nil {
		t.Fatal("Bootstrap(nil) did not error")
	}
	if _, err := Bootstrap(xs, nil, 100, 0.95, 1); err == nil {
		t.Fatal("Bootstrap(nil stat) did not error")
	}
	if _, err := Bootstrap(xs, Mean, 1, 0.95, 1); err == nil {
		t.Fatal("Bootstrap(1 resample) did not error")
	}
	if _, err := Bootstrap(xs, Mean, 100, 1.5, 1); err == nil {
		t.Fatal("Bootstrap(conf=1.5) did not error")
	}
}
