// Package stats provides the small statistical toolkit the contention
// model and its calibration suite need: summaries, mean-absolute
// percentage error, ordinary least squares, piecewise-linear fitting
// with exhaustive threshold search (the paper's method for locating the
// Sun/Paragon 1024-word knee), and the robust-estimation primitives the
// calibration trust layer uses to harden measurements against noise:
// trimmed means, median absolute deviation, quantiles, MAD-based
// outlier rejection, and bootstrap confidence intervals.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs, or an error on an empty
// slice — the non-panicking form for callers fed from external data.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, errors.New("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// sortedCopy returns xs sorted ascending without disturbing the
// caller's slice. Every order statistic below goes through it so none
// of them can mutate calibration sample buffers in place.
func sortedCopy(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}

// Median returns the median of xs (average of middle two for even n).
// The caller's slice is left untouched.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := sortedCopy(xs)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (the "type 7" estimator). The
// caller's slice is not mutated.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	s := sortedCopy(xs)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// TrimmedMean returns the mean of xs after dropping the trim fraction
// from each tail (trim in [0, 0.5)). trim = 0 is the plain mean; the
// count trimmed per tail is floor(n·trim), so small samples degrade
// gracefully to the untrimmed mean.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: TrimmedMean of empty slice")
	}
	if trim < 0 || trim >= 0.5 || math.IsNaN(trim) {
		return 0, fmt.Errorf("stats: trim fraction %v out of [0,0.5)", trim)
	}
	s := sortedCopy(xs)
	k := int(float64(len(s)) * trim)
	s = s[k : len(s)-k]
	return Mean(s), nil
}

// MAD returns the median absolute deviation of xs about its median —
// the robust scale estimate behind the calibration outlier filter. It
// is not scaled to be consistent with the standard deviation; multiply
// by 1.4826 for that.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// RejectOutliersMAD returns the values of xs within k MADs of the
// median (k is in standard-deviation-equivalent units via the 1.4826
// consistency factor), plus the number rejected. A zero MAD — at least
// half the samples identical, common for deterministic measurements —
// keeps every sample: there is no scale to reject against.
func RejectOutliersMAD(xs []float64, k float64) ([]float64, int) {
	if len(xs) == 0 || k <= 0 {
		return append([]float64(nil), xs...), 0
	}
	m := Median(xs)
	scale := 1.4826 * MAD(xs)
	if scale == 0 {
		return append([]float64(nil), xs...), 0
	}
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-m) <= k*scale {
			kept = append(kept, x)
		}
	}
	return kept, len(xs) - len(kept)
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Bootstrap estimates a confidence interval for stat(xs) by the
// percentile bootstrap: resamples of xs with replacement are drawn with
// a deterministic seeded RNG, stat is evaluated on each, and the
// (1-conf)/2 and (1+conf)/2 quantiles of the resampled statistics form
// the interval. conf is e.g. 0.95; resamples of ~200 suffice for the
// calibration suite.
func Bootstrap(xs []float64, stat func([]float64) float64, resamples int, conf float64, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, errors.New("stats: Bootstrap of empty slice")
	}
	if stat == nil {
		return Interval{}, errors.New("stats: Bootstrap with nil statistic")
	}
	if resamples < 2 {
		return Interval{}, fmt.Errorf("stats: Bootstrap needs ≥ 2 resamples, got %d", resamples)
	}
	if conf <= 0 || conf >= 1 || math.IsNaN(conf) {
		return Interval{}, fmt.Errorf("stats: confidence %v out of (0,1)", conf)
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float64, len(xs))
	vals := make([]float64, resamples)
	for r := range vals {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	lo, err := Quantile(vals, (1-conf)/2)
	if err != nil {
		return Interval{}, err
	}
	hi, err := Quantile(vals, (1+conf)/2)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi}, nil
}

// RelErr returns |predicted-actual| / actual. An actual of zero yields
// zero when predicted is also zero, else +Inf.
func RelErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// MAPE returns the mean absolute percentage error (in percent) of
// predicted against actual, the paper's accuracy metric.
func MAPE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: MAPE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, errors.New("stats: MAPE of empty series")
	}
	s := 0.0
	for i := range predicted {
		s += RelErr(predicted[i], actual[i])
	}
	return 100 * s / float64(len(predicted)), nil
}

// MaxAPE returns the maximum absolute percentage error (in percent).
func MaxAPE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: MaxAPE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(predicted) == 0 {
		return 0, errors.New("stats: MaxAPE of empty series")
	}
	m := 0.0
	for i := range predicted {
		if e := RelErr(predicted[i], actual[i]); e > m {
			m = e
		}
	}
	return 100 * m, nil
}

// LinearFit is the result of an ordinary-least-squares fit
// y ≈ Intercept + Slope·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	RMSE      float64
	N         int
}

// OLS fits a straight line by ordinary least squares. It requires at
// least two points with distinct x values.
func OLS(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: OLS length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, errors.New("stats: OLS needs at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	sxx, sxy := 0.0, 0.0
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: OLS with degenerate x values")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	sse := 0.0
	for i := 0; i < n; i++ {
		r := y[i] - (intercept + slope*x[i])
		sse += r * r
	}
	return LinearFit{Intercept: intercept, Slope: slope, RMSE: math.Sqrt(sse / float64(n)), N: n}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// PiecewiseFit is a two-piece linear model split at Threshold:
// points with x ≤ Threshold use Small, the rest use Large. This is the
// paper's piecewise communication-cost model.
type PiecewiseFit struct {
	Threshold float64
	Small     LinearFit
	Large     LinearFit
	RMSE      float64
}

// Predict evaluates the piecewise model at x.
func (f PiecewiseFit) Predict(x float64) float64 {
	if x <= f.Threshold {
		return f.Small.Predict(x)
	}
	return f.Large.Predict(x)
}

// FitPiecewise fits a two-piece linear model by exhaustive search over
// candidate thresholds (each distinct x value), exactly as the paper
// determines the Sun/Paragon 1024-word knee. Each piece needs at least
// two points. If no valid split exists it falls back to a single line
// used for both pieces with Threshold = max x.
func FitPiecewise(x, y []float64) (PiecewiseFit, error) {
	if len(x) != len(y) {
		return PiecewiseFit{}, fmt.Errorf("stats: FitPiecewise length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return PiecewiseFit{}, errors.New("stats: FitPiecewise needs at least 2 points")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}

	single, err := OLS(sx, sy)
	if err != nil {
		return PiecewiseFit{}, err
	}
	best := PiecewiseFit{Threshold: sx[len(sx)-1], Small: single, Large: single, RMSE: single.RMSE}

	// Candidate split after index i: left = [0..i], right = (i..n).
	for i := 1; i < len(sx)-2; i++ {
		if sx[i] == sx[i+1] {
			continue // threshold must separate distinct x values
		}
		left, errL := OLS(sx[:i+1], sy[:i+1])
		right, errR := OLS(sx[i+1:], sy[i+1:])
		if errL != nil || errR != nil {
			continue
		}
		// Combined RMSE over all points.
		sse := 0.0
		for j := range sx {
			var pred float64
			if j <= i {
				pred = left.Predict(sx[j])
			} else {
				pred = right.Predict(sx[j])
			}
			r := sy[j] - pred
			sse += r * r
		}
		rmse := math.Sqrt(sse / float64(len(sx)))
		if rmse < best.RMSE {
			best = PiecewiseFit{Threshold: sx[i], Small: left, Large: right, RMSE: rmse}
		}
	}
	return best, nil
}

// Summary bundles descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	StdDev       float64
}

// Summarize computes a Summary of xs; an empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
	}
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g med=%.4g min=%.4g max=%.4g sd=%.4g",
		s.N, s.Mean, s.Median, s.Min, s.Max, s.StdDev)
}
