package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasics(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %v/%v, want 1/9", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 4 {
		t.Fatalf("Median even = %v, want 4", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v, want 2", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, fn := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			fn(nil)
		}()
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); !approx(got, 0.1, 1e-12) {
		t.Fatalf("RelErr = %v, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Fatalf("RelErr(0,0) = %v, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelErr(1,0) = %v, want +Inf", got)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 10, 1e-9) {
		t.Fatalf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("MAPE length mismatch did not error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("MAPE of empty series did not error")
	}
}

func TestMaxAPE(t *testing.T) {
	got, err := MaxAPE([]float64{110, 80}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 20, 1e-9) {
		t.Fatalf("MaxAPE = %v, want 20", got)
	}
}

func TestOLSRecoversExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 + 2*v
	}
	f, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Intercept, 3, 1e-9) || !approx(f.Slope, 2, 1e-9) {
		t.Fatalf("fit = %+v, want intercept 3 slope 2", f)
	}
	if f.RMSE > 1e-9 {
		t.Fatalf("RMSE = %v on exact data, want ~0", f.RMSE)
	}
	if got := f.Predict(10); !approx(got, 23, 1e-9) {
		t.Fatalf("Predict(10) = %v, want 23", got)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS([]float64{1}, []float64{1}); err == nil {
		t.Fatal("OLS with one point did not error")
	}
	if _, err := OLS([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("OLS with degenerate x did not error")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("OLS length mismatch did not error")
	}
}

func TestOLSRecoversNoisyLineProperty(t *testing.T) {
	// Property: with symmetric small noise, recovered slope/intercept
	// are close to truth for a variety of random lines.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.Float64()*10 - 5
		intercept := r.Float64()*10 - 5
		var x, y []float64
		for i := 0; i < 200; i++ {
			xi := float64(i)
			x = append(x, xi)
			y = append(y, intercept+slope*xi+(r.Float64()-0.5)*0.01)
		}
		fit, err := OLS(x, y)
		if err != nil {
			return false
		}
		return approx(fit.Slope, slope, 1e-3) && approx(fit.Intercept, intercept, 0.05)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFitPiecewiseFindsKnee(t *testing.T) {
	// Construct a genuine two-piece function with a knee at x=1024:
	// y = 1 + 0.01x for x ≤ 1024, y = 5 + 0.02x beyond.
	var x, y []float64
	for _, xi := range []float64{16, 64, 128, 256, 512, 768, 1024, 1536, 2048, 3072, 4096} {
		x = append(x, xi)
		if xi <= 1024 {
			y = append(y, 1+0.01*xi)
		} else {
			y = append(y, 5+0.02*xi)
		}
	}
	f, err := FitPiecewise(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.Threshold != 1024 {
		t.Fatalf("Threshold = %v, want 1024", f.Threshold)
	}
	if !approx(f.Small.Slope, 0.01, 1e-6) || !approx(f.Large.Slope, 0.02, 1e-6) {
		t.Fatalf("slopes = %v/%v, want 0.01/0.02", f.Small.Slope, f.Large.Slope)
	}
	if got := f.Predict(512); !approx(got, 1+0.01*512, 1e-6) {
		t.Fatalf("Predict(512) = %v", got)
	}
	if got := f.Predict(2048); !approx(got, 5+0.02*2048, 1e-6) {
		t.Fatalf("Predict(2048) = %v", got)
	}
}

func TestFitPiecewiseFallsBackToSingleLine(t *testing.T) {
	// Perfectly linear data: single line should win (no spurious knee
	// improving RMSE).
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 4, 6, 8, 10, 12}
	f, err := FitPiecewise(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f.Small.Slope, 2, 1e-9) || !approx(f.Large.Slope, 2, 1e-9) {
		t.Fatalf("slopes = %v/%v, want 2/2", f.Small.Slope, f.Large.Slope)
	}
	if f.RMSE > 1e-9 {
		t.Fatalf("RMSE = %v, want ~0", f.RMSE)
	}
}

func TestFitPiecewiseErrors(t *testing.T) {
	if _, err := FitPiecewise([]float64{1}, []float64{1}); err == nil {
		t.Fatal("FitPiecewise with one point did not error")
	}
	if _, err := FitPiecewise([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("FitPiecewise length mismatch did not error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("Summarize(nil) should be zero")
	}
	if s.String() == "" {
		t.Fatal("String() empty")
	}
}

// Property: MAPE is scale-invariant (scaling both series equally).
func TestMAPEScaleInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		pred := make([]float64, n)
		act := make([]float64, n)
		for i := range pred {
			act[i] = 1 + r.Float64()*100
			pred[i] = act[i] * (0.5 + r.Float64())
		}
		m1, err1 := MAPE(pred, act)
		scale := 1 + r.Float64()*10
		sp := make([]float64, n)
		sa := make([]float64, n)
		for i := range pred {
			sp[i], sa[i] = pred[i]*scale, act[i]*scale
		}
		m2, err2 := MAPE(sp, sa)
		return err1 == nil && err2 == nil && approx(m1, m2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
