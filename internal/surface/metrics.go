package surface

import "contention/internal/obs"

// Build/lifecycle telemetry. Per-lookup hit/miss tallies live in
// internal/core (the Try fast path observes them), since the Predictor
// is the component that decides whether a query reaches the surface.
var (
	mBuilds = obs.NewCounter(obs.MetricSurfaceBuilds,
		"slowdown surfaces precomputed")
	mFills = obs.NewCounter(obs.MetricSurfaceFills,
		"grid nodes evaluated via the batched DP at build time")
	mInvalidations = obs.NewCounter(obs.MetricSurfaceInvalidations,
		"surfaces invalidated (MarkStale or recalibration)")
	mRevalidations = obs.NewCounter(obs.MetricSurfaceRevalidations,
		"surfaces revalidated through the checksum gate")
)
