// Package surface precomputes the paper's slowdown mixtures over a
// dense grid so the steady-state serving path answers with a
// bounds-checked table lookup plus linear interpolation instead of a
// Poisson-binomial DP per cold key.
//
// The precomputed domain is the homogeneous contender class: p
// identical contenders, each communicating a fraction f of the time and
// spending none of it in local I/O. Over that class the mixtures are
// smooth functions of (p, f) — for the computation slowdown, one such
// function per calibrated delay^{i,j} column — so a 1D grid in f per
// (p, column) captures them completely. Grid nodes are evaluated with
// the exact package-core mixture functions (identical arithmetic,
// identical accumulation order to the Predictor's cached DP), which
// makes surface answers bit-exact at the nodes; between nodes linear
// interpolation applies, with the error bound measured at build time
// (see Stats.MaxRelError) and pinned by test to ≤ 1e-3 relative.
//
// Grid geometry: f_k = k/Cells for k = 0..Cells with Cells a power of
// two, so any query fraction that is itself a dyadic rational k/Cells
// (every fraction the loadgen corpus or a percentage-quantized client
// produces) lands exactly on a node and is answered bit-exactly.
//
// Staleness: a surface is stamped with core.TablesChecksum of the
// tables it was built from. Predictor.MarkStale invalidates it;
// ClearStale revalidates it only through the checksum gate, so a
// surface built from superseded tables can never serve a fresh
// predictor (see core.SlowdownSurface).
package surface

import (
	"fmt"
	"math"
	"sync/atomic"

	"contention/internal/core"
)

// Config sizes the precomputed grid.
type Config struct {
	// MaxContenders is the largest homogeneous contender count the
	// surface covers (queries beyond it miss to the DP path). Default 16.
	MaxContenders int
	// GridCells is the number of grid intervals in the comm-fraction
	// axis; the grid has GridCells+1 nodes at f = k/GridCells. Must be a
	// power of two so dyadic query fractions hit nodes exactly.
	// Default 512.
	GridCells int
	// ErrorSampleStride controls build-time interpolation-error
	// measurement: every stride-th interval's midpoint is evaluated
	// exactly and compared against the interpolant. Default 7 (coprime
	// to the power-of-two cell count, so sampling drifts across rows).
	// Set negative to skip measurement.
	ErrorSampleStride int
}

func (c Config) withDefaults() Config {
	if c.MaxContenders == 0 {
		c.MaxContenders = 16
	}
	if c.GridCells == 0 {
		c.GridCells = 512
	}
	if c.ErrorSampleStride == 0 {
		c.ErrorSampleStride = 7
	}
	return c
}

// Stats describes a built surface.
type Stats struct {
	MaxContenders int
	GridCells     int
	Columns       int     // calibrated delay^{i,j} columns covered
	Fills         int     // grid nodes evaluated via the DP at build time
	MaxRelError   float64 // largest sampled midpoint interpolation error
	Checksum      uint64
}

// Surface is an immutable precomputed slowdown surface plus a validity
// latch. All lookup methods are goroutine-safe and allocation-free.
type Surface struct {
	checksum uint64
	cells    int
	maxP     int
	jGrid    []int
	valid    atomic.Bool

	// comm[p][k]: communication slowdown for p contenders at f=k/cells.
	comm [][]float64
	// comp[col][p][k]: computation slowdown per delay^{i,j} column.
	comp map[int][][]float64
	// comp0[p]: computation slowdown at f=0, where the cached DP skips
	// column resolution entirely (mirrored here so f=0 answers match the
	// cache path even on calibrations with no delay^{i,j} columns).
	comp0 []float64

	stats Stats
}

// Build evaluates the full grid from the given delay tables. The
// tables must be valid (a lenient predictor with broken tables answers
// from the p+1 fallback, which needs no surface).
func Build(t core.DelayTables, cfg Config) (*Surface, error) {
	cfg = cfg.withDefaults()
	if cfg.GridCells < 2 || cfg.GridCells&(cfg.GridCells-1) != 0 {
		return nil, fmt.Errorf("surface: grid cells %d must be a power of two ≥ 2", cfg.GridCells)
	}
	if cfg.MaxContenders < 1 {
		return nil, fmt.Errorf("surface: max contenders %d must be positive", cfg.MaxContenders)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("surface: invalid delay tables: %w", err)
	}
	s := &Surface{
		checksum: core.TablesChecksum(t),
		cells:    cfg.GridCells,
		maxP:     cfg.MaxContenders,
		jGrid:    t.JGrid(),
		comm:     make([][]float64, cfg.MaxContenders+1),
		comp:     make(map[int][][]float64, len(t.CommOnComp)),
		comp0:    make([]float64, cfg.MaxContenders+1),
	}
	cs := make([]core.Contender, 0, cfg.MaxContenders)
	fills := 0
	maxErr := 0.0
	sample := func(row []float64, eval func(f float64) (float64, error)) error {
		if cfg.ErrorSampleStride < 0 {
			return nil
		}
		for k := 0; k+1 <= s.cells; k += cfg.ErrorSampleStride {
			mid := (float64(k) + 0.5) / float64(s.cells)
			exact, err := eval(mid)
			if err != nil {
				return err
			}
			approx := row[k] + (mid*float64(s.cells)-float64(k))*(row[k+1]-row[k])
			if rel := math.Abs(approx-exact) / exact; rel > maxErr {
				maxErr = rel
			}
		}
		return nil
	}
	fillRow := func(p int, eval func(f float64) (float64, error)) ([]float64, error) {
		row := make([]float64, s.cells+1)
		for k := 0; k <= s.cells; k++ {
			v, err := eval(float64(k) / float64(s.cells))
			if err != nil {
				return nil, err
			}
			row[k] = v
			fills++
		}
		return row, sample(row, eval)
	}
	for p := 0; p <= cfg.MaxContenders; p++ {
		cs = cs[:p]
		for i := range cs {
			cs[i] = core.Contender{}
		}
		homog := func(f float64) []core.Contender {
			for i := range cs {
				cs[i].CommFraction = f
			}
			return cs
		}
		var err error
		if s.comm[p], err = fillRow(p, func(f float64) (float64, error) {
			return core.CommSlowdown(homog(f), t)
		}); err != nil {
			return nil, err
		}
		// f=0 computation slowdown: no contender communicates, so the
		// column never matters; any j works, even with no columns at all.
		v, err := core.CompSlowdownWithJ(homog(0), t, 0)
		if err != nil {
			return nil, err
		}
		s.comp0[p] = v
		fills++
		for _, col := range s.jGrid {
			col := col
			row, err := fillRow(p, func(f float64) (float64, error) {
				return core.CompSlowdownWithJ(homog(f), t, col)
			})
			if err != nil {
				return nil, err
			}
			s.comp[col] = append(s.comp[col], row)
		}
	}
	s.stats = Stats{
		MaxContenders: cfg.MaxContenders,
		GridCells:     cfg.GridCells,
		Columns:       len(s.jGrid),
		Fills:         fills,
		MaxRelError:   maxErr,
		Checksum:      s.checksum,
	}
	s.valid.Store(true)
	mBuilds.Inc()
	mFills.Add(int64(fills))
	return s, nil
}

// Stats returns the build statistics.
func (s *Surface) Stats() Stats { return s.stats }

// Checksum implements core.SlowdownSurface.
func (s *Surface) Checksum() uint64 { return s.checksum }

// Valid implements core.SlowdownSurface.
func (s *Surface) Valid() bool { return s.valid.Load() }

// Invalidate implements core.SlowdownSurface.
func (s *Surface) Invalidate() {
	if s.valid.Swap(false) {
		mInvalidations.Inc()
	}
}

// Revalidate implements core.SlowdownSurface: lookups resume only if
// the caller's tables still checksum to what this surface was built
// from.
func (s *Surface) Revalidate(checksum uint64) bool {
	if checksum != s.checksum {
		return false
	}
	if !s.valid.Swap(true) {
		mRevalidations.Inc()
	}
	return true
}

// interp evaluates the row's piecewise-linear interpolant at f∈[0,1].
// Dyadic fractions k/cells hit frac==0 and return the node bit-exactly.
func interp(row []float64, cells int, f float64) float64 {
	x := f * float64(cells)
	k := int(x)
	if k >= cells {
		return row[cells]
	}
	frac := x - float64(k)
	if frac == 0 {
		return row[k]
	}
	return row[k] + frac*(row[k+1]-row[k])
}

// Comm implements core.SlowdownSurface.
func (s *Surface) Comm(p int, f float64) (float64, bool) {
	if !s.valid.Load() || p < 0 || p > s.maxP || !(f >= 0 && f <= 1) {
		return 0, false
	}
	return interp(s.comm[p], s.cells, f), true
}

// CompWithJ implements core.SlowdownSurface. Column resolution uses the
// same core.NearestJ the cached DP path uses, so both select the same
// delay^{i,j} column for any message size.
func (s *Surface) CompWithJ(p int, f float64, words int) (float64, bool) {
	if !s.valid.Load() || p < 0 || p > s.maxP || !(f >= 0 && f <= 1) {
		return 0, false
	}
	if f == 0 {
		return s.comp0[p], true
	}
	col, err := core.NearestJ(s.jGrid, words)
	if err != nil {
		return 0, false
	}
	return interp(s.comp[col][p], s.cells, f), true
}
