package surface_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"contention/internal/caltrust"
	"contention/internal/core"
	"contention/internal/serve"
	"contention/internal/surface"
)

func testTables() core.DelayTables { return serve.SyntheticCalibration().Tables }

func homog(p int, f float64) []core.Contender {
	cs := make([]core.Contender, p)
	for i := range cs {
		cs[i] = core.Contender{CommFraction: f, MsgWords: 500}
	}
	return cs
}

// TestSurfaceMatchesDP is the randomized differential: 10k random
// (multiset, p, j) queries against the exact DP. Queries whose comm
// fraction lands on a grid node (dyadic k/cells) must match bit-exactly;
// off-grid queries must interpolate within 1e-3 relative — the bound
// DESIGN §10 derives from the mixture's Bernstein-form curvature.
func TestSurfaceMatchesDP(t *testing.T) {
	tab := testTables()
	const maxP, cells = 12, 512
	s, err := surface.Build(tab, surface.Config{MaxContenders: maxP, GridCells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MaxRelError > 1e-3 {
		t.Fatalf("build-time sampled interpolation error %.3g exceeds 1e-3", st.MaxRelError)
	}
	rng := rand.New(rand.NewSource(42))
	exactChecked, interpChecked := 0, 0
	for i := 0; i < 10_000; i++ {
		p := rng.Intn(maxP + 1)
		onGrid := rng.Intn(2) == 0
		var f float64
		if onGrid {
			f = float64(rng.Intn(cells+1)) / cells
		} else {
			f = rng.Float64()
		}
		cs := homog(p, f)
		words := rng.Intn(2000)

		wantComm, err := core.CommSlowdown(cs, tab)
		if err != nil {
			t.Fatal(err)
		}
		gotComm, ok := s.Comm(p, f)
		if !ok {
			t.Fatalf("Comm(%d, %v) missed", p, f)
		}
		wantComp, err := core.CompSlowdownWithJ(cs, tab, words)
		if err != nil {
			t.Fatal(err)
		}
		gotComp, ok := s.CompWithJ(p, f, words)
		if !ok {
			t.Fatalf("CompWithJ(%d, %v, %d) missed", p, f, words)
		}

		if onGrid {
			exactChecked++
			if gotComm != wantComm {
				t.Fatalf("grid-node Comm(%d, %v) = %v, want bit-exact %v", p, f, gotComm, wantComm)
			}
			if gotComp != wantComp {
				t.Fatalf("grid-node CompWithJ(%d, %v, %d) = %v, want bit-exact %v", p, f, words, gotComp, wantComp)
			}
		} else {
			interpChecked++
			if rel := math.Abs(gotComm-wantComm) / wantComm; rel > 1e-3 {
				t.Fatalf("Comm(%d, %v): rel error %.3g > 1e-3 (got %v want %v)", p, f, rel, gotComm, wantComm)
			}
			if rel := math.Abs(gotComp-wantComp) / wantComp; rel > 1e-3 {
				t.Fatalf("CompWithJ(%d, %v, %d): rel error %.3g > 1e-3 (got %v want %v)", p, f, words, rel, gotComp, wantComp)
			}
		}
	}
	if exactChecked == 0 || interpChecked == 0 {
		t.Fatalf("degenerate split: %d exact, %d interpolated", exactChecked, interpChecked)
	}
}

// TestSurfaceTryPath covers the Predictor integration: surface answers
// homogeneous queries, heterogeneous queries fall to the warm memo
// cache, and out-of-domain queries miss.
func TestSurfaceTryPath(t *testing.T) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := surface.Build(cal.Tables, surface.Config{MaxContenders: 8, GridCells: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.AttachSurface(s); err != nil {
		t.Fatal(err)
	}

	cs := homog(3, 0.25)
	want, err := pred.CommSlowdown(cs)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pred.TryCommSlowdown(cs)
	if !ok || got != want {
		t.Fatalf("TryCommSlowdown = %v ok=%v, want %v (surface-resident, dyadic)", got, ok, want)
	}

	// Heterogeneous: off-class for the surface, cold for the cache.
	hetero := []core.Contender{{CommFraction: 0.2, MsgWords: 100}, {CommFraction: 0.4, MsgWords: 900}}
	if _, ok := pred.TryCommSlowdown(hetero); ok {
		t.Fatal("cold heterogeneous multiset should miss the Try path")
	}
	want, err = pred.CommSlowdown(hetero) // warms the memo cache
	if err != nil {
		t.Fatal(err)
	}
	got, ok = pred.TryCommSlowdown(hetero)
	if !ok || got != want {
		t.Fatalf("warm heterogeneous TryCommSlowdown = %v ok=%v, want %v", got, ok, want)
	}

	// Beyond the surface's contender range: must miss, not extrapolate.
	if _, ok := pred.TryCompSlowdownWithJ(homog(9, 0.5), 500); ok {
		t.Fatal("p beyond surface MaxContenders should miss")
	}
}

// TestSurfaceInvalidation is the staleness protocol: MarkStale
// invalidates, ClearStale revalidates through the checksum gate, a
// recalibration adoption invalidates the superseded predictor's
// surface, and a surface can never attach to (or revalidate against)
// tables it was not built from.
func TestSurfaceInvalidation(t *testing.T) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := surface.Build(cal.Tables, surface.Config{MaxContenders: 8, GridCells: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.AttachSurface(s); err != nil {
		t.Fatal(err)
	}
	cs := homog(3, 0.25)
	if _, ok := pred.TryCommSlowdown(cs); !ok {
		t.Fatal("attached surface should answer")
	}

	pred.MarkStale("regime change")
	if s.Valid() {
		t.Fatal("MarkStale must invalidate the attached surface")
	}
	if _, ok := pred.TryCommSlowdown(cs); ok {
		t.Fatal("stale predictor must not answer from the Try path")
	}
	if _, ok := s.Comm(3, 0.25); ok {
		t.Fatal("invalidated surface must refuse lookups")
	}

	pred.ClearStale()
	if !s.Valid() {
		t.Fatal("ClearStale must revalidate a same-tables surface")
	}
	if _, ok := pred.TryCommSlowdown(cs); !ok {
		t.Fatal("revalidated surface should answer again")
	}

	// Recalibration: adopting a new predictor marks the old one stale,
	// which invalidates its surface — the old pair can never serve fresh
	// traffic that was re-pointed at the new predictor.
	cal2 := serve.SyntheticCalibration()
	cal2.Tables.CompOnComm = append([]float64(nil), cal2.Tables.CompOnComm...)
	cal2.Tables.CompOnComm[0] += 0.01
	pred2, err := core.NewPredictor(cal2)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := caltrust.NewTracker(pred, caltrust.DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tracker.Adopt(pred2); err != nil {
		t.Fatal(err)
	}
	if pred.Stale() == "" {
		t.Fatal("superseded predictor must be marked stale")
	}
	if s.Valid() {
		t.Fatal("superseded predictor's surface must be invalidated")
	}
	if _, ok := pred.TryCommSlowdown(cs); ok {
		t.Fatal("superseded predictor must not serve from its surface")
	}

	// The old surface was built from different tables: it can neither
	// attach to the new predictor nor revalidate against its checksum.
	if err := pred2.AttachSurface(s); !errors.Is(err, core.ErrSurfaceChecksum) {
		t.Fatalf("cross-tables attach: err = %v, want ErrSurfaceChecksum", err)
	}
	if s.Revalidate(core.TablesChecksum(cal2.Tables)) {
		t.Fatal("cross-tables revalidation must fail")
	}
	if s.Revalidate(core.TablesChecksum(cal.Tables)) != true {
		t.Fatal("same-tables revalidation must succeed")
	}
}

// TestSurfaceLookupAllocationFree pins the warm fast path at exactly
// zero allocations per lookup — raw surface lookups and the full
// Predictor Try path (surface hit, and warm-cache probe fallback).
func TestSurfaceLookupAllocationFree(t *testing.T) {
	cal := serve.SyntheticCalibration()
	pred, err := core.NewPredictor(cal)
	if err != nil {
		t.Fatal(err)
	}
	s, err := surface.Build(cal.Tables, surface.Config{MaxContenders: 8, GridCells: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.AttachSurface(s); err != nil {
		t.Fatal(err)
	}
	cs := homog(4, 0.3)
	hetero := []core.Contender{{CommFraction: 0.2, MsgWords: 100}, {CommFraction: 0.4, MsgWords: 900}}
	if _, err := pred.CommSlowdown(hetero); err != nil {
		t.Fatal(err)
	}
	if _, err := pred.CompSlowdown(hetero); err != nil {
		t.Fatal(err)
	}
	sets := []core.DataSet{{N: 10, Words: 800}}

	cases := []struct {
		name string
		fn   func() bool
	}{
		{"Surface.Comm", func() bool { _, ok := s.Comm(4, 0.3); return ok }},
		{"Surface.CompWithJ", func() bool { _, ok := s.CompWithJ(4, 0.3, 700); return ok }},
		{"TryCommSlowdown/surface", func() bool { _, ok := pred.TryCommSlowdown(cs); return ok }},
		{"TryCompSlowdownWithJ/surface", func() bool { _, ok := pred.TryCompSlowdownWithJ(cs, 500); return ok }},
		{"TryCommSlowdown/cache", func() bool { _, ok := pred.TryCommSlowdown(hetero); return ok }},
		{"TryCompSlowdown/cache", func() bool { _, ok := pred.TryCompSlowdown(hetero); return ok }},
		{"TryPredictComm", func() bool { _, ok := pred.TryPredictComm(core.HostToBack, sets, cs); return ok }},
		{"TryPredictComp", func() bool { _, ok := pred.TryPredictComp(2.5, cs); return ok }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.fn() {
				t.Fatal("warm lookup missed")
			}
			if allocs := testing.AllocsPerRun(200, func() {
				if !tc.fn() {
					t.Fatal("warm lookup missed")
				}
			}); allocs != 0 {
				t.Fatalf("warm lookup allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}
