package trace

import (
	"strings"
	"testing"
)

// TestTimelineOutOfOrderEvents checks that a timeline rendered from
// events recorded out of chronological order is identical to one
// rendered from the same events recorded in order.
func TestTimelineOutOfOrderEvents(t *testing.T) {
	var ordered, shuffled Trace
	ordered.Record(0, "cpu", "run")
	ordered.Record(1, "cpu", "idle")
	ordered.Record(2, "cpu", "run")
	ordered.Record(3, "cpu", "idle")

	shuffled.Record(2, "cpu", "run")
	shuffled.Record(0, "cpu", "run")
	shuffled.Record(3, "cpu", "idle")
	shuffled.Record(1, "cpu", "idle")

	want := ordered.Timeline(1, []string{"cpu"})
	got := shuffled.Timeline(1, []string{"cpu"})
	if got != want {
		t.Fatalf("out-of-order rendering differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if !strings.Contains(want, "run") || !strings.Contains(want, "idle") {
		t.Fatalf("timeline missing states:\n%s", want)
	}
}

// TestDuplicateTimestampLastWins checks the documented semantics for
// two events of one actor at the same instant: the later-recorded event
// wins (stable sort keeps record order, StateAt takes the last at the
// best time).
func TestDuplicateTimestampLastWins(t *testing.T) {
	var tr Trace
	tr.Record(1, "wire", "send")
	tr.Record(1, "wire", "ack")
	if got := tr.StateAt("wire", 1); got != "ack" {
		t.Fatalf("StateAt duplicate timestamp = %q, want %q (last recorded)", got, "ack")
	}
	// The same holds when the duplicates were recorded around other
	// events out of order.
	var tr2 Trace
	tr2.Record(2, "wire", "idle")
	tr2.Record(1, "wire", "send")
	tr2.Record(1, "wire", "ack")
	if got := tr2.StateAt("wire", 1.5); got != "ack" {
		t.Fatalf("StateAt after out-of-order duplicates = %q, want %q", got, "ack")
	}
	line1 := timelineRow(t, tr.Timeline(1, []string{"wire"}), 0)
	if !strings.Contains(line1, "ack") {
		t.Fatalf("timeline row at duplicate timestamp %q, want the last event's state", line1)
	}
}

// TestTimelineSingleEvent checks the degenerate one-event log: the span
// collapses to a point and the timeline still renders a header plus
// exactly one row carrying the state.
func TestTimelineSingleEvent(t *testing.T) {
	var tr Trace
	tr.Record(2.5, "host", "compute")
	out := tr.Timeline(0.5, []string{"host"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("single-event timeline has %d lines, want header + 1 row:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "host") {
		t.Fatalf("header missing actor: %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.500") || !strings.Contains(lines[1], "compute") {
		t.Fatalf("row %q, want time 2.500 in state compute", lines[1])
	}
	lo, hi := tr.Span()
	if lo != 2.5 || hi != 2.5 {
		t.Fatalf("span = [%v, %v], want the single event time", lo, hi)
	}
}

// timelineRow returns the n-th data row (0-based, after the header).
func timelineRow(t *testing.T, timeline string, n int) string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(timeline, "\n"), "\n")
	if n+1 >= len(lines) {
		t.Fatalf("timeline has no row %d:\n%s", n, timeline)
	}
	return lines[n+1]
}
