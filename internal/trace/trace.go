// Package trace records actor/state timelines from simulation runs and
// renders them as fixed-step text charts — the form of the paper's
// Figure 2, which interleaves the Sun's serial instructions with the
// CM2's execute/idle states.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Event marks an actor entering a state at a virtual time; the state
// persists until the actor's next event.
type Event struct {
	At    float64
	Actor string
	State string
}

// Trace is an append-only event log.
type Trace struct {
	events []Event
}

// Record appends an event. Events may be recorded out of order; they
// are sorted stably at rendering time.
func (t *Trace) Record(at float64, actor, state string) {
	t.events = append(t.events, Event{At: at, Actor: actor, State: state})
}

// Events returns a copy of the log sorted by time (stable).
func (t *Trace) Events() []Event {
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len reports the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// StateAt returns the actor's state at the given time ("" before its
// first event).
func (t *Trace) StateAt(actor string, at float64) string {
	state := ""
	best := -1.0
	for _, e := range t.events {
		if e.Actor != actor || e.At > at {
			continue
		}
		if e.At >= best {
			best = e.At
			state = e.State
		}
	}
	return state
}

// Span returns the [min, max] event time range; zero values if empty.
func (t *Trace) Span() (float64, float64) {
	if len(t.events) == 0 {
		return 0, 0
	}
	lo, hi := t.events[0].At, t.events[0].At
	for _, e := range t.events {
		if e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
	}
	return lo, hi
}

// Timeline renders a fixed-step table with one column per actor (in the
// order given), one row per step of virtual time — the layout of the
// paper's Figure 2.
func (t *Trace) Timeline(step float64, actors []string) string {
	if step <= 0 {
		panic(fmt.Sprintf("trace: step %v must be positive", step))
	}
	if len(actors) == 0 || t.Len() == 0 {
		return ""
	}
	lo, hi := t.Span()

	width := make([]int, len(actors))
	for i, a := range actors {
		width[i] = len(a)
	}
	type row struct {
		at     float64
		states []string
	}
	var rows []row
	for at := lo; at <= hi+step/2; at += step {
		r := row{at: at, states: make([]string, len(actors))}
		for i, a := range actors {
			s := t.StateAt(a, at+step/4) // sample just inside the step
			r.states[i] = s
			if len(s) > width[i] {
				width[i] = len(s)
			}
		}
		rows = append(rows, r)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "t")
	for i, a := range actors {
		fmt.Fprintf(&b, "  %-*s", width[i], a)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.3f", r.at)
		for i, s := range r.states {
			fmt.Fprintf(&b, "  %-*s", width[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
