package trace

import (
	"strings"
	"testing"
)

func TestStateAtFollowsTransitions(t *testing.T) {
	var tr Trace
	tr.Record(0, "cm2", "idle")
	tr.Record(2, "cm2", "execute")
	tr.Record(5, "cm2", "idle")
	cases := []struct {
		at   float64
		want string
	}{
		{-1, ""}, {0, "idle"}, {1.9, "idle"}, {2, "execute"}, {4.9, "execute"}, {5, "idle"}, {100, "idle"},
	}
	for _, c := range cases {
		if got := tr.StateAt("cm2", c.at); got != c.want {
			t.Errorf("StateAt(%v) = %q, want %q", c.at, got, c.want)
		}
	}
}

func TestStateAtIgnoresOtherActors(t *testing.T) {
	var tr Trace
	tr.Record(0, "sun", "serial")
	if got := tr.StateAt("cm2", 1); got != "" {
		t.Fatalf("StateAt other actor = %q, want empty", got)
	}
}

func TestEventsSortedStably(t *testing.T) {
	var tr Trace
	tr.Record(3, "a", "x")
	tr.Record(1, "a", "y")
	tr.Record(3, "b", "z")
	ev := tr.Events()
	if ev[0].At != 1 || ev[1].At != 3 || ev[2].At != 3 {
		t.Fatalf("events %v not sorted", ev)
	}
	if ev[1].Actor != "a" || ev[2].Actor != "b" {
		t.Fatalf("stable order violated: %v", ev)
	}
}

func TestSpan(t *testing.T) {
	var tr Trace
	if lo, hi := tr.Span(); lo != 0 || hi != 0 {
		t.Fatalf("empty span = %v/%v", lo, hi)
	}
	tr.Record(2, "a", "x")
	tr.Record(7, "a", "y")
	if lo, hi := tr.Span(); lo != 2 || hi != 7 {
		t.Fatalf("span = %v/%v, want 2/7", lo, hi)
	}
}

func TestTimelineRendersColumns(t *testing.T) {
	var tr Trace
	tr.Record(0, "sun", "serial")
	tr.Record(0, "cm2", "idle")
	tr.Record(1, "sun", "serial")
	tr.Record(1, "cm2", "execute")
	tr.Record(2, "sun", "idle")
	out := tr.Timeline(1, []string{"sun", "cm2"})
	if !strings.Contains(out, "sun") || !strings.Contains(out, "cm2") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 time steps
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "execute") {
		t.Fatalf("row for t=1 missing execute state:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tr Trace
	if out := tr.Timeline(1, []string{"a"}); out != "" {
		t.Fatalf("empty trace rendered %q", out)
	}
	tr.Record(0, "a", "x")
	if out := tr.Timeline(1, nil); out != "" {
		t.Fatalf("no actors rendered %q", out)
	}
}

func TestTimelinePanicsOnBadStep(t *testing.T) {
	var tr Trace
	tr.Record(0, "a", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("zero step did not panic")
		}
	}()
	tr.Timeline(0, []string{"a"})
}
