// Package workload provides the contention generators and synthetic
// benchmarks the paper uses to emulate load on production systems:
// CPU-bound hogs, compute/communicate alternators with a configurable
// communication fraction and message size, burst senders (the Figure
// 4–6 workload), and the ping-pong benchmark the calibration suite runs.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"contention/internal/cpu"

	"contention/internal/des"
	"contention/internal/platform"
)

// Direction of a generator's transfers relative to the front-end.
type Direction int

const (
	// SunToParagon sends from the front-end to the MPP.
	SunToParagon Direction = iota
	// ParagonToSun receives on the front-end from the MPP.
	ParagonToSun
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case SunToParagon:
		return "sun→paragon"
	case ParagonToSun:
		return "paragon→sun"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// SpawnCPUHog starts a process that computes forever on the platform
// host — the paper's CPU-bound contention generator.
func SpawnCPUHog(sp *platform.SunParagon, name string) {
	sp.K.Spawn(name, func(p *des.Proc) {
		sp.Host.Compute(p, 1e18)
	})
}

// AlternatorSpec describes one compute/communicate contender on the Sun.
type AlternatorSpec struct {
	Name string
	// CommFraction is the fraction of each dedicated-mode cycle spent
	// communicating with the Paragon; the rest is CPU-bound computation.
	CommFraction float64
	// MsgWords is the message size the contender transfers.
	MsgWords int
	// Period is the dedicated-mode cycle duration in seconds.
	Period float64
	// Phase delays the first cycle, staggering contenders.
	Phase float64
	// Direction selects which way the contender's messages flow.
	Direction Direction
	// IOFraction is the fraction of each dedicated-mode cycle spent
	// blocked on local disk I/O (the load-characteristics extension);
	// computation takes the remaining 1 - CommFraction - IOFraction.
	IOFraction float64
	// IOWords is the size of each disk operation (defaults to 4096).
	IOWords int
	// Stop, when positive, ends the contender at that virtual time
	// (checked at cycle boundaries) — the dynamic job-mix setting of
	// the phased-prediction extension.
	Stop float64
}

// Validate checks the spec.
func (s AlternatorSpec) Validate() error {
	if s.CommFraction < 0 || s.CommFraction > 1 || math.IsNaN(s.CommFraction) {
		return fmt.Errorf("workload: comm fraction %v out of [0,1]", s.CommFraction)
	}
	if s.MsgWords <= 0 {
		return fmt.Errorf("workload: message size %d must be positive", s.MsgWords)
	}
	if s.Period <= 0 {
		return fmt.Errorf("workload: period %v must be positive", s.Period)
	}
	if s.Phase < 0 {
		return fmt.Errorf("workload: phase %v must be non-negative", s.Phase)
	}
	if s.IOFraction < 0 || s.IOFraction > 1 || math.IsNaN(s.IOFraction) {
		return fmt.Errorf("workload: I/O fraction %v out of [0,1]", s.IOFraction)
	}
	if s.CommFraction+s.IOFraction > 1 {
		return fmt.Errorf("workload: comm %v + I/O %v fractions exceed 1", s.CommFraction, s.IOFraction)
	}
	if s.IOWords < 0 {
		return fmt.Errorf("workload: negative I/O size %d", s.IOWords)
	}
	if s.Stop < 0 {
		return fmt.Errorf("workload: negative stop time %v", s.Stop)
	}
	if s.Stop > 0 && s.Stop <= s.Phase {
		return fmt.Errorf("workload: stop %v not after phase %v", s.Stop, s.Phase)
	}
	if s.Direction != SunToParagon && s.Direction != ParagonToSun {
		return fmt.Errorf("workload: unknown direction %d", int(s.Direction))
	}
	return nil
}

// dedicatedMsgTime estimates the dedicated-mode cost of one contender
// message as seen from the Sun (conversion + wire).
func dedicatedMsgTime(sp *platform.SunParagon, words int, dir Direction) float64 {
	wire := sp.Link.WireTime(words)
	if dir == SunToParagon {
		return sp.Params.SendStartup + sp.Params.SendPerWord*float64(words) + wire
	}
	return sp.Params.RecvStartup + sp.Params.RecvPerWord*float64(words) + wire
}

// MessagesPerCycle returns the number of messages an alternator sends
// each cycle so that its dedicated-mode communication fraction matches
// the spec (at least one).
func MessagesPerCycle(sp *platform.SunParagon, spec AlternatorSpec) int {
	if spec.CommFraction == 0 {
		return 0
	}
	budget := spec.CommFraction * spec.Period
	per := dedicatedMsgTime(sp, spec.MsgWords, spec.Direction)
	n := int(math.Round(budget / per))
	if n < 1 {
		n = 1
	}
	return n
}

// SpawnAlternator starts a contender that alternates computation with
// communication per the spec, running until the simulation horizon.
// The returned port name carries its traffic.
func SpawnAlternator(sp *platform.SunParagon, spec AlternatorSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	port := "alt:" + spec.Name
	n := MessagesPerCycle(sp, spec)
	computeWork := (1 - spec.CommFraction - spec.IOFraction) * spec.Period
	ioOps, ioWords := IOOpsPerCycle(sp, spec)
	doIO := func(p *des.Proc) {
		for i := 0; i < ioOps; i++ {
			sp.Disk.Op(p, ioWords)
		}
	}

	switch spec.Direction {
	case SunToParagon:
		sp.K.Spawn(spec.Name, func(p *des.Proc) {
			if spec.Phase > 0 {
				p.Delay(spec.Phase)
			}
			for {
				if spec.Stop > 0 && p.Now() >= spec.Stop {
					return
				}
				if computeWork > 0 {
					sp.Host.Compute(p, computeWork)
				}
				doIO(p)
				for i := 0; i < n; i++ {
					sp.SendToParagon(p, port, spec.MsgWords)
				}
				if computeWork == 0 && n == 0 && ioOps == 0 {
					return // degenerate spec: nothing to do
				}
			}
		})
	case ParagonToSun:
		// The Sun-side process computes, then receives a burst the
		// Paragon-side partner sends on request. The request travels on
		// an internal control mailbox (zero simulated cost — it stands
		// for the application's own synchronization).
		ctl := des.NewMailbox[int](sp.K, "ctl:"+spec.Name)
		sp.K.Spawn(spec.Name+":mpp", func(p *des.Proc) {
			for {
				count := ctl.Recv(p)
				for i := 0; i < count; i++ {
					sp.SendToSun(p, port, spec.MsgWords)
				}
			}
		})
		sp.K.Spawn(spec.Name, func(p *des.Proc) {
			if spec.Phase > 0 {
				p.Delay(spec.Phase)
			}
			for {
				if spec.Stop > 0 && p.Now() >= spec.Stop {
					return
				}
				if computeWork > 0 {
					sp.Host.Compute(p, computeWork)
				}
				doIO(p)
				if n > 0 {
					ctl.Send(n)
					for i := 0; i < n; i++ {
						sp.RecvOnSun(p, port)
					}
				}
				if computeWork == 0 && n == 0 && ioOps == 0 {
					return
				}
			}
		})
	}
	return port, nil
}

// IOOpsPerCycle returns the per-cycle disk operation count and size so
// that the alternator's dedicated-mode I/O fraction matches the spec.
func IOOpsPerCycle(sp *platform.SunParagon, spec AlternatorSpec) (ops, words int) {
	if spec.IOFraction == 0 {
		return 0, 0
	}
	words = spec.IOWords
	if words == 0 {
		words = 4096
	}
	budget := spec.IOFraction * spec.Period
	per := sp.Disk.OpTime(words) + sp.Params.Disk.CPUPerOp
	ops = int(math.Round(budget / per))
	if ops < 1 {
		ops = 1
	}
	return ops, words
}

// BurstToParagon sends count messages of words each from the Sun,
// returning elapsed virtual time (the Figure 5 measurement).
func BurstToParagon(p *des.Proc, sp *platform.SunParagon, port string, count, words int) float64 {
	start := p.Now()
	for i := 0; i < count; i++ {
		sp.SendToParagon(p, port, words)
	}
	return p.Now() - start
}

// BurstRequest asks the Paragon-side responder for a burst.
type BurstRequest struct {
	Count int
	Words int
}

// BurstServer runs a Paragon-side process answering burst requests on
// the given control mailbox: for each request it sends Count messages
// of Words each to the Sun on the given port.
func BurstServer(sp *platform.SunParagon, name, port string) *des.Mailbox[BurstRequest] {
	ctl := des.NewMailbox[BurstRequest](sp.K, "burstctl:"+name)
	sp.K.Spawn(name, func(p *des.Proc) {
		for {
			req := ctl.Recv(p)
			for i := 0; i < req.Count; i++ {
				sp.SendToSun(p, port, req.Words)
			}
		}
	})
	return ctl
}

// BurstFromParagon triggers a count×words burst from the Paragon to the
// Sun via ctl and receives it on port, returning elapsed virtual time
// (the Figure 6 measurement).
func BurstFromParagon(p *des.Proc, sp *platform.SunParagon, ctl *des.Mailbox[BurstRequest], port string, count, words int) float64 {
	start := p.Now()
	ctl.Send(BurstRequest{Count: count, Words: words})
	for i := 0; i < count; i++ {
		sp.RecvOnSun(p, port)
	}
	return p.Now() - start
}

// pingEnd marks the final message of a ping burst.
type pingEnd struct{}

// SpawnPingEcho starts the Paragon-side echo: whenever the end-marker
// arrives on port, it replies with a one-word message (the paper's
// ping-pong benchmark protocol: a burst of same-size messages, then one
// word back).
func SpawnPingEcho(sp *platform.SunParagon, port string) {
	sp.K.Spawn("echo:"+port, func(p *des.Proc) {
		for {
			msg := sp.RecvOnParagon(p, port)
			if _, ok := msg.Payload.(pingEnd); ok {
				sp.SendToSun(p, port, 1)
			}
		}
	})
}

// PingPongBurst sends count messages of words each and waits for the
// one-word reply, returning elapsed time. SpawnPingEcho must be running
// on the port.
func PingPongBurst(p *des.Proc, sp *platform.SunParagon, port string, count, words int) float64 {
	if count < 1 {
		panic(fmt.Sprintf("workload: burst count %d must be ≥ 1", count))
	}
	start := p.Now()
	for i := 0; i < count-1; i++ {
		sp.SunEnd.Send(p, port, port, words, nil)
	}
	sp.SunEnd.Send(p, port, port, words, pingEnd{})
	sp.RecvOnSun(p, port)
	return p.Now() - start
}

// DrainPort consumes messages arriving on a Paragon port forever,
// keeping mailboxes from growing without bound in long runs.
func DrainPort(sp *platform.SunParagon, port string) {
	sp.K.Spawn("drain:"+port, func(p *des.Proc) {
		for {
			sp.RecvOnParagon(p, port)
		}
	})
}

// SpawnDutyHogOnHost starts a nearly-CPU-bound contender directly on a
// host: each cycle it computes duty×period of work and idles the rest,
// with deterministic pseudo-random jitter on the cycle length. Real
// "CPU-bound" applications take such micro-pauses (page faults, brief
// I/O), which is one source of the paper's measurement error against
// the ideal p+1 law.
func SpawnDutyHogOnHost(k *des.Kernel, host *cpu.Host, name string, duty, period float64, seed int64) {
	if duty <= 0 || duty > 1 || math.IsNaN(duty) {
		panic(fmt.Sprintf("workload: duty %v out of (0,1]", duty))
	}
	if period <= 0 {
		panic(fmt.Sprintf("workload: period %v must be positive", period))
	}
	rng := rand.New(rand.NewSource(seed))
	k.Spawn(name, func(p *des.Proc) {
		for {
			scale := 0.6 + 0.8*rng.Float64() // ±40% cycle jitter
			cycle := period * scale
			host.Compute(p, duty*cycle)
			if idle := (1 - duty) * cycle; idle > 0 {
				p.Delay(idle)
			}
		}
	})
}
