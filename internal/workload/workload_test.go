package workload

import (
	"math"
	"testing"

	"contention/internal/des"
	"contention/internal/platform"
)

func newSP(t *testing.T) (*des.Kernel, *platform.SunParagon) {
	t.Helper()
	k := des.New()
	return k, platform.MustNewSunParagon(k, platform.DefaultParagonParams(platform.OneHop))
}

func TestDirectionString(t *testing.T) {
	if SunToParagon.String() == "" || ParagonToSun.String() == "" || Direction(5).String() == "" {
		t.Fatal("empty direction strings")
	}
}

func TestAlternatorSpecValidate(t *testing.T) {
	good := AlternatorSpec{Name: "a", CommFraction: 0.5, MsgWords: 100, Period: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AlternatorSpec{
		{Name: "f", CommFraction: -0.1, MsgWords: 1, Period: 1},
		{Name: "f2", CommFraction: 1.5, MsgWords: 1, Period: 1},
		{Name: "w", CommFraction: 0.5, MsgWords: 0, Period: 1},
		{Name: "p", CommFraction: 0.5, MsgWords: 1, Period: 0},
		{Name: "ph", CommFraction: 0.5, MsgWords: 1, Period: 1, Phase: -1},
		{Name: "d", CommFraction: 0.5, MsgWords: 1, Period: 1, Direction: Direction(7)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v did not error", s)
		}
	}
}

func TestMessagesPerCycleMatchesFraction(t *testing.T) {
	_, sp := newSP(t)
	spec := AlternatorSpec{Name: "a", CommFraction: 0.5, MsgWords: 200, Period: 0.1}
	n := MessagesPerCycle(sp, spec)
	if n < 1 {
		t.Fatalf("n = %d", n)
	}
	per := dedicatedMsgTime(sp, 200, SunToParagon)
	frac := float64(n) * per / spec.Period
	if math.Abs(frac-0.5) > 0.2 {
		t.Fatalf("dedicated comm fraction %v, want ≈ 0.5", frac)
	}
	if MessagesPerCycle(sp, AlternatorSpec{CommFraction: 0}) != 0 {
		t.Fatal("zero fraction should send no messages")
	}
}

func TestAlternatorDedicatedFractionsEmerge(t *testing.T) {
	// Run one alternator alone; its long-run comm fraction (measured as
	// link busy time over elapsed) should be near the spec.
	k, sp := newSP(t)
	spec := AlternatorSpec{Name: "a", CommFraction: 0.4, MsgWords: 500, Period: 0.2}
	if _, err := SpawnAlternator(sp, spec); err != nil {
		t.Fatal(err)
	}
	const horizon = 50.0
	k.RunUntil(horizon)
	// Host busy fraction ≈ (1 - comm share of the cycle) plus the
	// conversion CPU share of comm; both host and link shares must be
	// substantial and sum near 1 in dedicated mode.
	hostFrac := sp.Host.BusyTime() / horizon
	linkFrac := sp.Link.BusyTime() / horizon
	if hostFrac < 0.5 || hostFrac > 0.95 {
		t.Fatalf("host busy fraction %v outside (0.5,0.95)", hostFrac)
	}
	if linkFrac < 0.2 || linkFrac > 0.5 {
		t.Fatalf("link busy fraction %v, want ≈ 0.33 (wire share of comm)", linkFrac)
	}
}

func TestAlternatorParagonToSunDelivers(t *testing.T) {
	k, sp := newSP(t)
	spec := AlternatorSpec{
		Name: "b", CommFraction: 0.5, MsgWords: 300, Period: 0.1,
		Direction: ParagonToSun,
	}
	if _, err := SpawnAlternator(sp, spec); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(5)
	if sp.Link.Messages() == 0 {
		t.Fatal("no messages moved paragon→sun")
	}
	if sp.Host.BusyTime() == 0 {
		t.Fatal("sun-side compute phase never ran")
	}
}

func TestSpawnAlternatorRejectsInvalid(t *testing.T) {
	_, sp := newSP(t)
	if _, err := SpawnAlternator(sp, AlternatorSpec{Name: "x", CommFraction: 2, MsgWords: 1, Period: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestBurstToParagonElapsed(t *testing.T) {
	k, sp := newSP(t)
	var elapsed float64
	k.Spawn("m", func(p *des.Proc) {
		elapsed = BurstToParagon(p, sp, "bench", 100, 200)
	})
	k.Run()
	per := dedicatedMsgTime(sp, 200, SunToParagon)
	if math.Abs(elapsed-100*per)/(100*per) > 0.05 {
		t.Fatalf("burst took %v, want ≈ %v", elapsed, 100*per)
	}
}

func TestBurstFromParagonElapsed(t *testing.T) {
	k, sp := newSP(t)
	ctl := BurstServer(sp, "server", "bench")
	var elapsed float64
	k.Spawn("m", func(p *des.Proc) {
		elapsed = BurstFromParagon(p, sp, ctl, "bench", 100, 200)
	})
	k.Run()
	wire := sp.Link.WireTime(200)
	// Lower bound: 100 wire occupancies; upper: + conversion each.
	if elapsed < 100*wire-1e-9 {
		t.Fatalf("burst took %v, below wire-only bound %v", elapsed, 100*wire)
	}
	per := dedicatedMsgTime(sp, 200, ParagonToSun)
	if elapsed > 100*per*1.1 {
		t.Fatalf("burst took %v, above dedicated estimate %v", elapsed, 100*per)
	}
}

func TestPingPongBurst(t *testing.T) {
	k, sp := newSP(t)
	SpawnPingEcho(sp, "pp")
	var e1, e2 float64
	k.Spawn("m", func(p *des.Proc) {
		e1 = PingPongBurst(p, sp, "pp", 50, 100)
		e2 = PingPongBurst(p, sp, "pp", 50, 2000)
	})
	k.RunUntil(1e5)
	if e1 <= 0 || e2 <= e1 {
		t.Fatalf("ping-pong times %v/%v: larger messages must take longer", e1, e2)
	}
}

func TestPingPongBurstPanicsOnZeroCount(t *testing.T) {
	k, sp := newSP(t)
	SpawnPingEcho(sp, "pp")
	k.Spawn("m", func(p *des.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("count 0 did not panic")
			}
		}()
		PingPongBurst(p, sp, "pp", 0, 1)
	})
	k.RunUntil(10)
}

func TestCPUHogSaturatesHost(t *testing.T) {
	k, sp := newSP(t)
	SpawnCPUHog(sp, "hog")
	k.RunUntil(10)
	if got := sp.Host.BusyTime(); math.Abs(got-10) > 1e-6 {
		t.Fatalf("host busy %v of 10s with a hog", got)
	}
}

func TestDrainPortConsumes(t *testing.T) {
	k, sp := newSP(t)
	DrainPort(sp, "d")
	k.Spawn("s", func(p *des.Proc) {
		for i := 0; i < 5; i++ {
			sp.SendToParagon(p, "d", 10)
		}
	})
	k.RunUntil(10)
	if n := sp.ParagonEnd.Port("d").Len(); n != 0 {
		t.Fatalf("mailbox holds %d messages, want 0 (drained)", n)
	}
}

func TestAlternatorStopEndsContender(t *testing.T) {
	k, sp := newSP(t)
	spec := AlternatorSpec{
		Name: "stopper", CommFraction: 0, MsgWords: 1, Period: 0.05, Stop: 2.0,
	}
	if _, err := SpawnAlternator(sp, spec); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(10)
	busy := sp.Host.BusyTime()
	// Active roughly [0, 2): busy close to 2, then idle.
	if busy < 1.8 || busy > 2.3 {
		t.Fatalf("host busy %v, want ≈ 2 (contender stopped)", busy)
	}
}

func TestAlternatorStopValidation(t *testing.T) {
	_, sp := newSP(t)
	if _, err := SpawnAlternator(sp, AlternatorSpec{
		Name: "bad", CommFraction: 0.1, MsgWords: 1, Period: 1, Phase: 2, Stop: 1,
	}); err == nil {
		t.Fatal("stop before phase accepted")
	}
	if _, err := SpawnAlternator(sp, AlternatorSpec{
		Name: "bad2", CommFraction: 0.1, MsgWords: 1, Period: 1, Stop: -1,
	}); err == nil {
		t.Fatal("negative stop accepted")
	}
}

func TestAlternatorIOFractionUsesDisk(t *testing.T) {
	k, sp := newSP(t)
	spec := AlternatorSpec{
		Name: "io", CommFraction: 0, IOFraction: 0.5, IOWords: 8192,
		MsgWords: 1, Period: 0.2,
	}
	if _, err := SpawnAlternator(sp, spec); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(10)
	if sp.Disk.Ops() == 0 {
		t.Fatal("I/O-bound alternator performed no disk operations")
	}
	// Host busy fraction ≈ compute share (0.5) plus small CPU-per-op.
	busyFrac := sp.Host.BusyTime() / 10
	if busyFrac < 0.4 || busyFrac > 0.65 {
		t.Fatalf("host busy fraction %v, want ≈ 0.5", busyFrac)
	}
	diskFrac := sp.Disk.BusyTime() / 10
	if diskFrac < 0.35 || diskFrac > 0.6 {
		t.Fatalf("disk busy fraction %v, want ≈ 0.5", diskFrac)
	}
}

func TestAlternatorIOValidation(t *testing.T) {
	_, sp := newSP(t)
	bad := []AlternatorSpec{
		{Name: "a", CommFraction: 0.6, IOFraction: 0.6, MsgWords: 1, Period: 1},
		{Name: "b", CommFraction: 0, IOFraction: -0.1, MsgWords: 1, Period: 1},
		{Name: "c", CommFraction: 0, IOFraction: 0.5, IOWords: -1, MsgWords: 1, Period: 1},
	}
	for _, s := range bad {
		if _, err := SpawnAlternator(sp, s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestIOOpsPerCycle(t *testing.T) {
	_, sp := newSP(t)
	ops, words := IOOpsPerCycle(sp, AlternatorSpec{IOFraction: 0.5, Period: 0.2})
	if ops < 1 || words != 4096 {
		t.Fatalf("ops=%d words=%d", ops, words)
	}
	if ops, _ := IOOpsPerCycle(sp, AlternatorSpec{IOFraction: 0}); ops != 0 {
		t.Fatalf("zero fraction ops = %d", ops)
	}
}
