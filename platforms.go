package contention

import (
	"errors"
	"fmt"

	"contention/internal/calibrate"
	"contention/internal/des"
	"contention/internal/platform"
	"contention/internal/sched"
	"contention/internal/workload"
)

// Simulation kernel (see internal/des).
type (
	// Kernel is the deterministic discrete-event simulation core.
	Kernel = des.Kernel
	// Proc is a simulated process on a Kernel.
	Proc = des.Proc
)

// NewKernel returns an empty simulation kernel with the clock at zero.
func NewKernel() *Kernel { return des.New() }

// Simulated platforms (see internal/platform).
type (
	// SunCM2 is the tightly coupled host/SIMD platform.
	SunCM2 = platform.SunCM2
	// SunParagon is the independent host/MPP platform.
	SunParagon = platform.SunParagon
	// CM2Params configures a SunCM2 platform.
	CM2Params = platform.CM2Params
	// ParagonParams configures a SunParagon platform.
	ParagonParams = platform.ParagonParams
	// HopMode selects the Sun/Paragon communication path.
	HopMode = platform.HopMode
)

// Communication modes between the Sun and the Paragon.
const (
	// OneHop is direct TCP from the Sun to a Paragon compute node.
	OneHop = platform.OneHop
	// TwoHops routes through the Paragon's service node (TCP + NX).
	TwoHops = platform.TwoHops
)

// DefaultCM2Params returns era-plausible Sun/CM2 parameters.
func DefaultCM2Params() CM2Params { return platform.DefaultCM2Params() }

// DefaultParagonParams returns era-plausible Sun/Paragon parameters.
func DefaultParagonParams(mode HopMode) ParagonParams {
	return platform.DefaultParagonParams(mode)
}

// NewSunCM2 builds a Sun/CM2 platform on the kernel.
func NewSunCM2(k *Kernel, p CM2Params) (*SunCM2, error) { return platform.NewSunCM2(k, p) }

// NewSunParagon builds a Sun/Paragon platform on the kernel.
func NewSunParagon(k *Kernel, p ParagonParams) (*SunParagon, error) {
	return platform.NewSunParagon(k, p)
}

// Workloads and contention generators (see internal/workload).
type (
	// AlternatorSpec describes a compute/communicate contender.
	AlternatorSpec = workload.AlternatorSpec
	// WorkloadDirection selects which way a generator's traffic flows.
	WorkloadDirection = workload.Direction
)

// Generator traffic directions.
const (
	// SunToParagon sends from the front-end to the MPP.
	SunToParagon = workload.SunToParagon
	// ParagonToSun receives on the front-end from the MPP.
	ParagonToSun = workload.ParagonToSun
)

// SpawnAlternator starts a compute/communicate contender on sp.
func SpawnAlternator(sp *SunParagon, spec AlternatorSpec) (string, error) {
	return workload.SpawnAlternator(sp, spec)
}

// SpawnCPUHog starts a CPU-bound contender on sp's front-end.
func SpawnCPUHog(sp *SunParagon, name string) { workload.SpawnCPUHog(sp, name) }

// SpawnPingEcho starts the Paragon-side ping-pong echo on a port.
func SpawnPingEcho(sp *SunParagon, port string) { workload.SpawnPingEcho(sp, port) }

// PingPongBurst sends count messages of words each and waits for the
// one-word reply, returning elapsed virtual time. Invalid arguments
// (nil process or platform, count < 1, negative words) return an error
// instead of panicking inside the simulation.
func PingPongBurst(p *Proc, sp *SunParagon, port string, count, words int) (float64, error) {
	if p == nil {
		return 0, errors.New("contention: PingPongBurst with nil process")
	}
	if sp == nil {
		return 0, errors.New("contention: PingPongBurst with nil platform")
	}
	if count < 1 {
		return 0, fmt.Errorf("contention: burst count %d must be ≥ 1", count)
	}
	if words < 0 {
		return 0, fmt.Errorf("contention: negative message size %d", words)
	}
	return workload.PingPongBurst(p, sp, port, count, words), nil
}

// Calibration suite (see internal/calibrate).
type (
	// CalibrationOptions controls the Sun/Paragon calibration suite.
	CalibrationOptions = calibrate.Options
	// CM2CalibrationOptions controls the Sun/CM2 benchmarks.
	CM2CalibrationOptions = calibrate.CM2Options
)

// DefaultCalibrationOptions returns the options the experiments use.
func DefaultCalibrationOptions(p ParagonParams) CalibrationOptions {
	return calibrate.DefaultOptions(p)
}

// Calibrate runs the full Sun/Paragon suite: α/β fits per direction
// plus the three delay tables.
func Calibrate(opts CalibrationOptions) (Calibration, error) { return calibrate.Run(opts) }

// DefaultCM2CalibrationOptions returns the Sun/CM2 benchmark defaults.
func DefaultCM2CalibrationOptions(p CM2Params) CM2CalibrationOptions {
	return calibrate.DefaultCM2Options(p)
}

// CalibrateCM2 measures the Sun/CM2 transfer model by the paper's two
// benchmarks.
func CalibrateCM2(opts CM2CalibrationOptions) (CommModel, error) {
	return calibrate.CalibrateCM2(opts)
}

// Allocation scheduler (see internal/sched).
type (
	// Problem is a chain-structured task-allocation problem.
	Problem = sched.Problem
	// Task names one coarse-grained application task.
	Task = sched.Task
	// Machine names one machine of the platform.
	Machine = sched.Machine
	// Edge is a data dependency between consecutive tasks.
	Edge = sched.Edge
	// Route is a directed machine pair for communication costs.
	Route = sched.Route
	// Assignment maps tasks to machines.
	Assignment = sched.Assignment
	// Ranked is a candidate allocation with its predicted makespan.
	Ranked = sched.Ranked
)

// PaperExample returns the paper's §1 allocation problem (Tables 1–2).
func PaperExample() Problem { return sched.PaperExample() }

// NewSunMultiParagon builds n back-end legs sharing one front-end CPU
// and disk — the more-than-two-machines platform.
func NewSunMultiParagon(k *Kernel, p ParagonParams, n int) ([]*SunParagon, error) {
	return platform.NewSunMultiParagon(k, p, n)
}

// Load bridges the contention model and the allocation problem: the
// slowdown factors currently in force on a machine.
type Load = sched.Load
