package contention

import (
	"contention/internal/experiments"
)

// Experiment reproduction (see internal/experiments).
type (
	// ExperimentResult is one reproduced table or figure.
	ExperimentResult = experiments.Result
	// ExperimentSeries is one labelled curve of a figure.
	ExperimentSeries = experiments.Series
	// ExperimentEnv bundles the calibrations the drivers share.
	ExperimentEnv = experiments.Env
)

// NewExperimentEnv calibrates both platforms for the experiment drivers.
func NewExperimentEnv() (*ExperimentEnv, error) { return experiments.NewEnv() }

// AllExperiments reproduces every table and figure of the paper's
// evaluation in order.
func AllExperiments(env *ExperimentEnv) ([]ExperimentResult, error) {
	return experiments.All(env)
}

// ExtensionExperiments runs the drivers beyond the paper's published
// exhibits: the synthetic generality suite and the §4 extensions.
func ExtensionExperiments(env *ExperimentEnv) ([]ExperimentResult, error) {
	return experiments.Extensions(env)
}
