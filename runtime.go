package contention

import (
	"contention/internal/monitor"
	"contention/internal/rm"
)

// Run-time infrastructure around the model: the resource manager the
// paper assumes supplies the application set (§2), and a load monitor
// that estimates workload parameters from observation when no
// descriptors are available.
type (
	// ResourceManager admits applications, queues MPP partition
	// requests, and maintains the incremental slowdown state.
	ResourceManager = rm.Manager
	// ResourceManagerConfig configures a ResourceManager.
	ResourceManagerConfig = rm.Config
	// AppDescriptor registers one application with the manager.
	AppDescriptor = rm.AppDescriptor
	// RunningApp is an admitted application.
	RunningApp = rm.Running
	// Monitor samples a platform and estimates workload parameters.
	Monitor = monitor.Monitor
	// MonitorSample is one reading of the platform counters.
	MonitorSample = monitor.Sample
	// WorkloadEstimate summarizes an observation window.
	WorkloadEstimate = monitor.Estimate
)

// NewResourceManager builds a resource manager.
func NewResourceManager(k *Kernel, cfg ResourceManagerConfig) (*ResourceManager, error) {
	return rm.New(k, cfg)
}

// NewMonitor creates a load monitor sampling sp every interval seconds.
func NewMonitor(sp *SunParagon, interval float64, maxKeep int) (*Monitor, error) {
	return monitor.New(sp, interval, maxKeep)
}
