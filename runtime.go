package contention

import (
	"contention/internal/core"
	"contention/internal/faults"
	"contention/internal/monitor"
	"contention/internal/rm"
)

// Run-time infrastructure around the model: the resource manager the
// paper assumes supplies the application set (§2), and a load monitor
// that estimates workload parameters from observation when no
// descriptors are available.
type (
	// ResourceManager admits applications, queues MPP partition
	// requests, and maintains the incremental slowdown state.
	ResourceManager = rm.Manager
	// ResourceManagerConfig configures a ResourceManager.
	ResourceManagerConfig = rm.Config
	// AppDescriptor registers one application with the manager.
	AppDescriptor = rm.AppDescriptor
	// RunningApp is an admitted application.
	RunningApp = rm.Running
	// Monitor samples a platform and estimates workload parameters.
	Monitor = monitor.Monitor
	// MonitorSample is one reading of the platform counters.
	MonitorSample = monitor.Sample
	// WorkloadEstimate summarizes an observation window.
	WorkloadEstimate = monitor.Estimate
)

// NewResourceManager builds a resource manager.
func NewResourceManager(k *Kernel, cfg ResourceManagerConfig) (*ResourceManager, error) {
	return rm.New(k, cfg)
}

// NewMonitor creates a load monitor sampling sp every interval seconds.
func NewMonitor(sp *SunParagon, interval float64, maxKeep int) (*Monitor, error) {
	return monitor.New(sp, interval, maxKeep)
}

// Admission-control sentinels (see internal/rm).
var (
	// ErrQueueFull is returned when the bounded admission queue is at
	// capacity.
	ErrQueueFull = rm.ErrQueueFull
	// ErrSubmitTimeout is returned when a queued partition request is
	// not granted within the configured submit timeout.
	ErrSubmitTimeout = rm.ErrSubmitTimeout
)

// --- Fault injection and graceful degradation -------------------------------

// Deterministic seeded fault injection for the simulated platform (see
// internal/faults): composable schedules for transient link faults,
// host stalls and crash-restart windows, contender churn, and monitor
// sample loss, all reproducible for a fixed seed.
type (
	// FaultInjector owns the seeded RNG and arms fault schedules.
	FaultInjector = faults.Injector
	// Fault is one composable fault schedule.
	Fault = faults.Fault
	// FaultWindow bounds a fault schedule in virtual time.
	FaultWindow = faults.Window
	// InjectedFault is one fault event that actually fired.
	InjectedFault = faults.Injected
	// LinkFaults drops or corrupts transmission attempts on a DES link.
	LinkFaults = faults.LinkFaults
	// HostStalls freezes the processor-sharing host at Poisson arrivals.
	HostStalls = faults.HostStalls
	// CrashRestart models fail-stop crashes with a fixed restart time.
	CrashRestart = faults.CrashRestart
	// ContenderChurn perturbs the job mix behind the model's back.
	ContenderChurn = faults.ContenderChurn
	// SampleLoss drops monitor samples on a lossy telemetry path.
	SampleLoss = faults.SampleLoss
)

// NewFaultInjector returns an injector bound to k with a fixed seed.
func NewFaultInjector(k *Kernel, seed int64) *FaultInjector {
	return faults.NewInjector(k, seed)
}

// Prediction is a cost prediction carrying degradation metadata: when
// the calibration cannot support the mixture model, Value holds the
// conservative p+1 worst case, Degraded is set, and Reason says why.
type Prediction = core.Prediction

// NewPredictorLenient accepts a possibly incomplete calibration without
// error; the Robust prediction methods degrade to the p+1 worst case
// instead of failing.
func NewPredictorLenient(cal Calibration) *Predictor {
	return core.NewPredictorLenient(cal)
}

// WorstCaseSlowdown is the conservative degraded-mode fallback: p+1 for
// p contenders.
func WorstCaseSlowdown(cs []Contender) float64 { return core.WorstCaseSlowdown(cs) }
