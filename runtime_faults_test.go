package contention

import "testing"

// Smoke test for the fault-injection and degraded-prediction façade:
// the re-exports must be usable without importing internal packages.
func TestFacadeFaultInjection(t *testing.T) {
	k := NewKernel()
	sp, err := NewSunParagon(k, DefaultParagonParams(OneHop))
	if err != nil {
		t.Fatal(err)
	}
	in := NewFaultInjector(k, 42)
	err = in.Arm(
		LinkFaults{Link: sp.Link, DropProb: 0.3, Window: FaultWindow{Start: 0, End: 2}},
		HostStalls{Host: sp.Host, MeanSpacing: 0.2, MeanDuration: 0.05},
	)
	if err != nil {
		t.Fatal(err)
	}
	SpawnPingEcho(sp, "x")
	done := false
	k.Spawn("b", func(p *Proc) {
		if _, err := PingPongBurst(p, sp, "x", 100, 300); err != nil {
			t.Error(err)
		}
		done = true
		k.Stop()
	})
	k.Run()
	if !done {
		t.Fatal("burst did not complete")
	}
	if in.Count("") == 0 {
		t.Fatal("no fault events logged")
	}
	var injected []InjectedFault = in.Log()
	if len(injected) != in.Count("") {
		t.Fatalf("Log has %d entries, Count says %d", len(injected), in.Count(""))
	}
}

func TestFacadeDegradedPrediction(t *testing.T) {
	p := NewPredictorLenient(Calibration{
		ToBack: Uniform(0.5, 10),
		ToHost: Uniform(0.5, 10),
	})
	cs := []Contender{{CommFraction: 0.5, MsgWords: 500}}
	var pred Prediction
	pred, err := p.PredictCommRobust(HostToBack, []DataSet{{N: 4, Words: 200}}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Degraded || pred.Reason == "" {
		t.Fatalf("table-less façade prediction not flagged: %+v", pred)
	}
	if got := WorstCaseSlowdown(cs); got != 2 {
		t.Fatalf("WorstCaseSlowdown = %v, want 2", got)
	}
}
